// Package nvmlog implements the NVM-aware log-structured updates engine
// (NVM-Log, §4.3). Differences from the traditional Log engine:
//
//   - MemTables are never flushed to the filesystem: a full MemTable is
//     simply marked immutable (it is already durable on NVM) and a new
//     mutable MemTable starts. Compaction merges the immutable MemTables
//     into a new, larger MemTable.
//   - The WAL is a non-volatile linked list whose purpose is only to *undo*
//     uncommitted transactions — the MemTable itself is durable, so there
//     is no redo/rebuild at recovery (§4.3: "Its recovery latency is
//     therefore lower than the Log engine as it no longer needs to rebuild
//     the MemTable").
//   - Each immutable MemTable carries a Bloom filter to skip index
//     look-ups while coalescing tuples across runs.
package nvmlog

import (
	"bytes"
	"fmt"
	"sort"

	"nstore/internal/bloom"
	"nstore/internal/core"
	"nstore/internal/engine/lsm"
	"nstore/internal/mvcc"
	"nstore/internal/nvbtree"
	"nstore/internal/pmalloc"
)

const (
	hdrMagic = 0x4e564d4c4f473131 // "NVMLOG11"
	rootSlot = 0

	// Engine header layout.
	hMagic     = 0
	hCommitted = 8
	hWalHead   = 16
	hMutable   = 24 // current mutable MemTable tree header
	hRunList   = 32 // immutable run list chunk (0 = none)
	hNTables   = 40
	hAnchors   = 48 // per table: secondary tree headers

	// Run list chunk: n u64, then per run {treeHdr, bloomPtr, bloomMeta}.
	// bloomMeta packs words<<8 | k. Runs are ordered newest first.
	runEntSize = 24

	// WAL entry layout (TagLog chunk).
	wNext   = 0
	wTxn    = 8
	wType   = 16
	wTable  = 17
	wNSec   = 18
	wKey    = 24
	wOldPtr = 32
	wNewPtr = 40
	wSec    = 48 // nSec x {idx u8, op u8 (1 added, 2 removed), composite u64}
	secRec  = 10
)

// run is one immutable MemTable.
type run struct {
	tree       *nvbtree.Tree
	bloomPtr   pmalloc.Ptr
	bloomWords uint64
	bloomK     int
}

// Engine is the NVM-aware log-structured updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	hdr      pmalloc.Ptr
	mem      *nvbtree.Tree
	memCount int
	runs     []*run // newest first
	second   [][]*nvbtree.Tree

	ops         []txnOp
	compactions int
}

type txnOp struct {
	entry  pmalloc.Ptr
	oldPtr uint64 // superseded entry chunk, freed at commit
}

// New creates a fresh NVM-Log engine anchored at arena root slot 0.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	nSec := 0
	for _, s := range schemas {
		nSec += len(s.Secondary)
	}
	hdr, err := env.Arena.Alloc(hAnchors+8*nSec, pmalloc.TagOther)
	if err != nil {
		return nil, err
	}
	e.hdr = hdr
	d := env.Dev
	d.WriteU64(int64(hdr)+hMagic, hdrMagic)
	d.WriteU64(int64(hdr)+hCommitted, 0)
	d.WriteU64(int64(hdr)+hWalHead, 0)
	d.WriteU64(int64(hdr)+hRunList, 0)
	d.WriteU64(int64(hdr)+hNTables, uint64(len(schemas)))
	mem, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
	if err != nil {
		return nil, err
	}
	e.mem = mem
	d.WriteU64(int64(hdr)+hMutable, e.mem.Header())
	off := int64(hAnchors)
	for _, tm := range e.Tables {
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			d.WriteU64(int64(hdr)+off, st.Header())
			off += 8
		}
		e.second = append(e.second, secs)
	}
	d.Sync(int64(hdr), hAnchors+8*nSec)
	env.Arena.SetPersisted(hdr)
	env.Arena.SetRoot(rootSlot, hdr)
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// Open recovers the engine: reopen the durable MemTables and indexes, undo
// in-flight transactions via the WAL, complete any interrupted rotation,
// and sweep orphaned chunks. No MemTable rebuild (§4.3).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()

	hdr := env.Arena.Root(rootSlot)
	if hdr == 0 || env.Dev.ReadU64(int64(hdr)+hMagic) != hdrMagic {
		return nil, fmt.Errorf("nvmlog: no engine header")
	}
	e.hdr = hdr
	d := env.Dev
	if int(d.ReadU64(int64(hdr)+hNTables)) != len(schemas) {
		return nil, fmt.Errorf("nvmlog: schema mismatch")
	}
	mem, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+hMutable))
	if err != nil {
		return nil, err
	}
	e.mem = mem
	if err := e.loadRuns(); err != nil {
		return nil, err
	}
	// A crash between the run-list swap and the mutable swap leaves the
	// same tree both mutable and newest-immutable; finish the rotation.
	if len(e.runs) > 0 && e.runs[0].tree.Header() == e.mem.Header() {
		fresh, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
		if err != nil {
			return nil, err
		}
		e.mem = fresh
		d.WriteU64Durable(int64(e.hdr)+hMutable, e.mem.Header())
	}
	off := int64(hAnchors)
	for _, tm := range e.Tables {
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+off))
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			off += 8
		}
		e.second = append(e.second, secs)
	}
	if err := e.undoWAL(); err != nil {
		return nil, err
	}
	e.memCount = e.mem.Count()
	if err := e.sweep(); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) loadRuns() error {
	d := e.Env.Dev
	list := d.ReadU64(int64(e.hdr) + hRunList)
	if list == 0 {
		return nil
	}
	n := int(d.ReadU64(int64(list)))
	for i := 0; i < n; i++ {
		base := int64(list) + 8 + int64(i)*runEntSize
		tr, err := nvbtree.Open(e.Env.Arena, d.ReadU64(base))
		if err != nil {
			return err
		}
		meta := d.ReadU64(base + 16)
		e.runs = append(e.runs, &run{
			tree:       tr,
			bloomPtr:   d.ReadU64(base + 8),
			bloomWords: meta >> 8,
			bloomK:     int(meta & 0xff),
		})
	}
	return nil
}

// sweep reclaims persisted chunks orphaned by crashes during rotation,
// compaction, or WAL truncation, and re-verifies each immutable run's Bloom
// filter against its tree. The reachability marking and all device reads stay
// on the owner goroutine; the chunk classification and the Bloom rebuilds are
// host-memory work and fan out across RecoveryParallelism workers.
func (e *Engine) sweep() error {
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	reach := make(map[pmalloc.Ptr]bool)
	mark := func(p pmalloc.Ptr) { reach[p] = true }
	reach[e.hdr] = true
	if list := e.Env.Dev.ReadU64(int64(e.hdr) + hRunList); list != 0 {
		reach[list] = true
	}
	markTree := func(t *nvbtree.Tree, keys *[]uint64) {
		t.Nodes(mark)
		t.Iter(0, func(k, v uint64) bool {
			reach[v] = true
			if keys != nil {
				*keys = append(*keys, k)
			}
			return true
		})
	}
	markTree(e.mem, nil)
	// The marking pass over each run doubles as the key harvest for the
	// parallel Bloom verification below.
	runKeys := make([][]uint64, len(e.runs))
	for i, r := range e.runs {
		markTree(r.tree, &runKeys[i])
		reach[r.bloomPtr] = true
	}
	for _, secs := range e.second {
		for _, st := range secs {
			st.Nodes(mark)
		}
	}

	type chunkRec struct {
		p   pmalloc.Ptr
		tag pmalloc.Tag
		st  pmalloc.State
	}
	var chunks []chunkRec
	e.Env.Arena.Chunks(func(p pmalloc.Ptr, size int, tag pmalloc.Tag, st pmalloc.State) {
		chunks = append(chunks, chunkRec{p: p, tag: tag, st: st})
	})
	orphans := make([][]pmalloc.Ptr, workers)
	_ = core.ParallelChunks(workers, len(chunks), func(w, lo, hi int) error {
		for _, c := range chunks[lo:hi] {
			if c.st != pmalloc.StatePersisted || reach[c.p] {
				continue
			}
			switch c.tag {
			case pmalloc.TagTable, pmalloc.TagIndex, pmalloc.TagLog:
				orphans[w] = append(orphans[w], c.p)
			}
		}
		return nil
	})
	for _, list := range orphans {
		for _, p := range list {
			e.Env.Arena.Free(p)
		}
	}
	var nkeys int64
	for _, ks := range runKeys {
		nkeys += int64(len(ks))
	}
	e.Rec = core.RecoveryReport{Records: int64(len(chunks)) + nkeys, Workers: workers}
	return e.verifyBlooms(workers, runKeys)
}

// verifyBlooms rebuilds each immutable run's Bloom filter from its tree keys
// (in parallel — the rebuild is pure hashing over host memory) and compares it
// with the persisted copy; a mismatched filter would silently turn lookups
// into false negatives, so it is repaired in place. storeRun sizes filters
// with the same constructor, so a rebuild from the same key count is
// bit-compatible whenever the stored metadata is intact.
func (e *Engine) verifyBlooms(workers int, runKeys [][]uint64) error {
	if len(e.runs) == 0 {
		return nil
	}
	d := e.Env.Dev
	stored := make([][]byte, len(e.runs))
	for i, r := range e.runs {
		stored[i] = make([]byte, r.bloomWords*8)
		d.Read(int64(r.bloomPtr), stored[i])
	}
	rebuilt := make([][]byte, len(e.runs)) // bits only; nil = matches
	ks := make([]int, len(e.runs))
	_ = core.ParallelChunks(workers, len(e.runs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			fl := bloom.New(len(runKeys[i]), 10)
			for _, k := range runKeys[i] {
				fl.Add(k)
			}
			bits := fl.Marshal()[8:]
			ks[i] = fl.K()
			if ks[i] == e.runs[i].bloomK && bytes.Equal(bits, stored[i]) {
				continue
			}
			rebuilt[i] = bits
		}
		return nil
	})
	relink := false
	for i, bits := range rebuilt {
		if bits == nil {
			continue
		}
		r := e.runs[i]
		if uint64(len(bits)) == r.bloomWords*8 && ks[i] == r.bloomK {
			// Same geometry: repair the persisted bits in place.
			d.Write(int64(r.bloomPtr), bits)
			d.Sync(int64(r.bloomPtr), len(bits))
			continue
		}
		// Geometry drifted (corrupt run-list metadata): persist a fresh
		// filter chunk and relink the run list afterwards.
		p, err := e.Env.Arena.Alloc(len(bits), pmalloc.TagIndex)
		if err != nil {
			return err
		}
		d.Write(int64(p), bits)
		d.Sync(int64(p), len(bits))
		e.Env.Arena.SetPersisted(p)
		e.Env.Arena.Free(r.bloomPtr)
		r.bloomPtr = p
		r.bloomWords = uint64(len(bits) / 8)
		r.bloomK = ks[i]
		relink = true
	}
	if relink {
		return e.swapRunList(e.runs)
	}
	return nil
}

// Entry chunks: kind u8, len u32, payload (TagTable, persisted).

func (e *Engine) writeEntryChunk(ent lsm.Entry) (pmalloc.Ptr, error) {
	p, err := e.Env.Arena.Alloc(5+len(ent.Payload), pmalloc.TagTable)
	if err != nil {
		// Table-arena exhaustion is reachable from normal traffic.
		return 0, err
	}
	d := e.Env.Dev
	d.WriteU8(int64(p), ent.Kind)
	d.WriteU32(int64(p)+1, uint32(len(ent.Payload)))
	d.Write(int64(p)+5, ent.Payload)
	d.Sync(int64(p), 5+len(ent.Payload))
	e.Env.Arena.SetPersisted(p)
	return p, nil
}

func (e *Engine) readEntryChunk(p uint64) lsm.Entry {
	d := e.Env.Dev
	kind := d.ReadU8(int64(p))
	n := int(d.ReadU32(int64(p) + 1))
	payload := make([]byte, n)
	d.Read(int64(p)+5, payload)
	return lsm.Entry{Kind: kind, Payload: payload}
}

// secFix describes a secondary-index change for WAL undo.
type secFix struct {
	idx       int
	added     bool
	composite uint64
}

// appendWAL logs one MemTable operation: which mapping changed (old/new
// entry-chunk pointers) and the secondary entries touched.
func (e *Engine) appendWAL(typ uint8, table int, key, oldPtr, newPtr uint64, fixes []secFix) (pmalloc.Ptr, error) {
	d := e.Env.Dev
	size := wSec + secRec*len(fixes)
	p, err := e.Env.Arena.Alloc(size, pmalloc.TagLog)
	if err != nil {
		// Log-arena exhaustion is reachable from normal traffic.
		return 0, err
	}
	d.WriteU64(int64(p)+wNext, d.ReadU64(int64(e.hdr)+hWalHead))
	d.WriteU64(int64(p)+wTxn, e.TxnID)
	d.WriteU8(int64(p)+wType, typ)
	d.WriteU8(int64(p)+wTable, uint8(table))
	d.WriteU8(int64(p)+wNSec, uint8(len(fixes)))
	d.WriteU64(int64(p)+wKey, key)
	d.WriteU64(int64(p)+wOldPtr, oldPtr)
	d.WriteU64(int64(p)+wNewPtr, newPtr)
	for i, f := range fixes {
		base := int64(p) + wSec + int64(i)*secRec
		d.WriteU8(base, uint8(f.idx))
		op := uint8(2)
		if f.added {
			op = 1
		}
		d.WriteU8(base+1, op)
		d.WriteU64(base+2, f.composite)
	}
	d.Sync(int64(p), size)
	e.Env.Arena.SetPersisted(p)
	d.WriteU64Durable(int64(e.hdr)+hWalHead, p)
	return p, nil
}

// undoWAL reverses in-flight transactions (newest entry first) and
// truncates the log.
func (e *Engine) undoWAL() error {
	d := e.Env.Dev
	head := d.ReadU64(int64(e.hdr) + hWalHead)
	var frees []pmalloc.Ptr
	for p := head; p != 0; p = d.ReadU64(int64(p) + wNext) {
		frees = append(frees, p)
		// Truncation is the commit point: linked entries are uncommitted.
		if err := e.undoEntry(p); err != nil {
			return err
		}
	}
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, p := range frees {
		if e.Env.Arena.StateOf(p) != pmalloc.StateFree {
			e.Env.Arena.Free(p)
		}
	}
	return nil
}

func (e *Engine) undoEntry(p pmalloc.Ptr) error {
	d := e.Env.Dev
	table := int(d.ReadU8(int64(p) + wTable))
	key := d.ReadU64(int64(p) + wKey)
	oldPtr := d.ReadU64(int64(p) + wOldPtr)
	newPtr := d.ReadU64(int64(p) + wNewPtr)
	tk := core.TreePrimary(table, key)
	if oldPtr != 0 {
		if err := e.mem.Put(tk, oldPtr); err != nil {
			return err
		}
	} else {
		if _, err := e.mem.Delete(tk); err != nil {
			return err
		}
	}
	if newPtr != 0 && e.Env.Arena.StateOf(newPtr) != pmalloc.StateFree {
		e.Env.Arena.Free(newPtr)
	}
	n := int(d.ReadU8(int64(p) + wNSec))
	for i := 0; i < n; i++ {
		base := int64(p) + wSec + int64(i)*secRec
		idx := int(d.ReadU8(base))
		op := d.ReadU8(base + 1)
		composite := d.ReadU64(base + 2)
		if op == 1 {
			if _, err := e.second[table][idx].Delete(composite); err != nil {
				return err
			}
		} else {
			if err := e.second[table][idx].Put(composite, core.SecPK(composite)); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyMem merges an entry into the mutable MemTable, logging undo info.
func (e *Engine) applyMem(tm *core.TableMeta, typ uint8, key uint64, ent lsm.Entry, fixes []secFix) error {
	tk := core.TreePrimary(tm.ID, key)
	var oldPtr uint64
	isNew := true
	if p, ok := e.mem.Get(tk); ok {
		oldPtr = p
		isNew = false
		ent = lsm.Merge(tm.Schema, ent, e.readEntryChunk(p))
	}
	newPtr, err := e.writeEntryChunk(ent)
	if err != nil {
		return err
	}
	entry, err := e.appendWAL(typ, tm.ID, key, oldPtr, uint64(newPtr), fixes)
	if err != nil {
		e.Env.Arena.Free(newPtr)
		return err
	}
	// Record the op before touching the trees so Abort can undo a partially
	// applied operation from the WAL entry.
	e.ops = append(e.ops, txnOp{entry: entry, oldPtr: oldPtr})
	if err := e.mem.Put(tk, uint64(newPtr)); err != nil {
		return err
	}
	if isNew {
		e.memCount++
	}
	for _, f := range fixes {
		if f.added {
			if err := e.second[tm.ID][f.idx].Put(f.composite, core.SecPK(f.composite)); err != nil {
				return err
			}
		} else {
			if _, err := e.second[tm.ID][f.idx].Delete(f.composite); err != nil {
				return err
			}
		}
	}
	return nil
}

// Name returns "nvm-log".
func (e *Engine) Name() string { return "nvm-log" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.ops = e.ops[:0]
	return nil
}

// Commit durably marks the transaction committed, truncates the WAL, and
// rotates/compacts MemTables as needed.
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	d := e.Env.Dev
	// Truncating the undo log is the atomic commit point (§4.3).
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		if op.oldPtr != 0 && e.Env.Arena.StateOf(op.oldPtr) != pmalloc.StateFree {
			e.Env.Arena.Free(op.oldPtr)
		}
		e.Env.Arena.Free(op.entry)
	}
	stop()
	// The WAL truncation above is the durability barrier: versions publish
	// to snapshot readers immediately (NVM-Log is durable at commit).
	e.MV.CommitStaged(e.TxnID, true)
	if e.memCount >= e.opts.MemTableCap {
		// The transaction is already durably committed (the WAL truncation
		// above); rotation/compaction are maintenance that a later commit
		// retries. End the txn before surfacing their errors.
		if err := e.rotate(); err != nil {
			_ = e.EndTx()
			return err
		}
		if len(e.runs) >= e.opts.LSMGrowth {
			if err := e.compact(); err != nil {
				_ = e.EndTx()
				return err
			}
		}
	}
	return e.EndTx()
}

// Abort undoes the transaction via its WAL entries and truncates the log.
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	for i := len(e.ops) - 1; i >= 0; i-- {
		if err := e.undoEntry(e.ops[i].entry); err != nil {
			// A failed rollback leaves volatile and durable state diverged;
			// only the engine's crash-recovery path can restore consistency.
			// The transaction is over either way — end it so recovery's
			// replacement Begin path is not blocked by ErrInTxn.
			_ = e.EndTx()
			return core.Corrupt(err)
		}
	}
	e.memCount = e.mem.Count()
	d := e.Env.Dev
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		e.Env.Arena.Free(op.entry)
	}
	e.MV.DropStaged()
	return e.EndTx()
}

// rotate marks the mutable MemTable immutable: build its Bloom filter,
// prepend it to the run list, and start a fresh MemTable (§4.3 — the
// MemTable is not flushed anywhere; it is already durable).
func (e *Engine) rotate() error {
	stop := e.Bd.Timer(&e.Bd.Storage)
	defer stop()
	var keys []uint64
	e.mem.Iter(0, func(k, v uint64) bool { keys = append(keys, k); return true })
	fl := bloom.New(len(keys), 10)
	for _, k := range keys {
		fl.Add(k)
	}
	newRun, err := e.storeRun(e.mem, fl)
	if err != nil {
		return err
	}
	if err := e.swapRunList(append([]*run{newRun}, e.runs...)); err != nil {
		return err
	}
	// Start the fresh mutable MemTable (recovery completes this step if a
	// crash lands between the two swaps).
	fresh, err := nvbtree.Create(e.Env.Arena, e.opts.BTreeNodeSize)
	if err != nil {
		return err
	}
	e.mem = fresh
	e.Env.Dev.WriteU64Durable(int64(e.hdr)+hMutable, e.mem.Header())
	e.memCount = 0
	return nil
}

// storeRun persists a bloom filter chunk and returns the run descriptor.
func (e *Engine) storeRun(tree *nvbtree.Tree, fl *bloom.Filter) (*run, error) {
	bm := fl.Marshal()
	p, err := e.Env.Arena.Alloc(len(bm)-8, pmalloc.TagIndex)
	if err != nil {
		return nil, err
	}
	d := e.Env.Dev
	d.Write(int64(p), bm[8:])
	d.Sync(int64(p), len(bm)-8)
	e.Env.Arena.SetPersisted(p)
	return &run{
		tree:       tree,
		bloomPtr:   p,
		bloomWords: uint64((len(bm) - 8) / 8),
		bloomK:     fl.K(),
	}, nil
}

// swapRunList atomically installs a new immutable-run list.
func (e *Engine) swapRunList(runs []*run) error {
	d := e.Env.Dev
	old := d.ReadU64(int64(e.hdr) + hRunList)
	var list pmalloc.Ptr
	if len(runs) > 0 {
		var err error
		list, err = e.Env.Arena.Alloc(8+runEntSize*len(runs), pmalloc.TagOther)
		if err != nil {
			return err
		}
		d.WriteU64(int64(list), uint64(len(runs)))
		for i, r := range runs {
			base := int64(list) + 8 + int64(i)*runEntSize
			d.WriteU64(base, r.tree.Header())
			d.WriteU64(base+8, r.bloomPtr)
			d.WriteU64(base+16, r.bloomWords<<8|uint64(r.bloomK))
		}
		d.Sync(int64(list), 8+runEntSize*len(runs))
		e.Env.Arena.SetPersisted(list)
	}
	d.WriteU64Durable(int64(e.hdr)+hRunList, uint64(list))
	if old != 0 {
		e.Env.Arena.Free(old)
	}
	e.runs = runs
	return nil
}

// compact merges a subset of the immutable MemTables — the two oldest —
// into one new, larger MemTable with a fresh Bloom filter (§4.3: "we also
// modified the compaction process to merge a set of these MemTables").
// Merging only the deepest pair bounds the transient space to roughly the
// size of that pair; tombstones are dropped because nothing older remains
// below them.
func (e *Engine) compact() error {
	stop := e.Bd.Timer(&e.Bd.Storage)
	defer stop()
	if len(e.runs) < 2 {
		return nil
	}
	e.compactions++
	victims := e.runs[len(e.runs)-2:] // newest-first order: the two oldest

	// Collect: for each key, entries newest-run first.
	entries := make(map[uint64][]lsm.Entry)
	var order []uint64
	for _, r := range victims {
		r.tree.Iter(0, func(k, v uint64) bool {
			if _, ok := entries[k]; !ok {
				order = append(order, k)
			}
			entries[k] = append(entries[k], e.readEntryChunk(v))
			return true
		})
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	merged, err := nvbtree.Create(e.Env.Arena, e.opts.BTreeNodeSize)
	if err != nil {
		return err
	}
	fl := bloom.New(len(order), 10)
	for _, k := range order {
		es := entries[k]
		acc := es[0]
		for _, ent := range es[1:] {
			acc = lsm.Merge(e.Tables[core.TreeTable(k)].Schema, acc, ent)
			if acc.Kind != lsm.KindDelta {
				break
			}
		}
		if acc.Kind == lsm.KindTomb {
			continue // reclaim space during compaction (Table 2)
		}
		cp, err := e.writeEntryChunk(acc)
		if err != nil {
			return err
		}
		if err := merged.Put(k, uint64(cp)); err != nil {
			return err
		}
		fl.Add(k)
	}
	newRun, err := e.storeRun(merged, fl)
	if err != nil {
		return err
	}
	oldRuns := e.runs
	newList := append(append([]*run{}, e.runs[:len(e.runs)-2]...), newRun)
	if err := e.swapRunList(newList); err != nil {
		return err
	}
	// Release the merged-away runs: their entry chunks, trees, and blooms.
	for _, r := range oldRuns[len(oldRuns)-2:] {
		r.tree.Iter(0, func(k, v uint64) bool {
			if e.Env.Arena.StateOf(v) != pmalloc.StateFree {
				e.Env.Arena.Free(v)
			}
			return true
		})
		r.tree.Release()
		e.Env.Arena.Free(r.bloomPtr)
	}
	return nil
}

// Insert adds a tuple (Table 2: sync tuple, log pointer, add to MemTable).
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	_, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if exists {
		return core.ErrKeyExists
	}
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		fixes = append(fixes, secFix{idx: j, added: true, composite: core.SecComposite(ix.SecKey(row), key)})
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalInsert, key, lsm.Entry{Kind: lsm.KindFull, Payload: core.EncodeRow(tm.Schema, row)}, fixes); err != nil {
		return err
	}
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update records the updated fields in the MemTable.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			fixes = append(fixes,
				secFix{idx: j, added: false, composite: core.SecComposite(ok, key)},
				secFix{idx: j, added: true, composite: core.SecComposite(nk, key)})
		}
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalUpdate, key, lsm.Entry{Kind: lsm.KindDelta, Payload: core.EncodeDelta(tm.Schema, upd)}, fixes); err != nil {
		return err
	}
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete marks the tuple with a tombstone in the MemTable.
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		fixes = append(fixes, secFix{idx: j, added: false, composite: core.SecComposite(ix.SecKey(old), key)})
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalDelete, key, lsm.Entry{Kind: lsm.KindTomb}, fixes); err != nil {
		return err
	}
	e.MV.StageDelete(table, key)
	return nil
}

// Get coalesces entries from the mutable MemTable and the immutable runs
// (newest first), probing each run's Bloom filter first (Table 2).
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	tk := core.TreePrimary(tm.ID, key)
	var acc lsm.Entry
	have := false
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if p, ok := e.mem.Get(tk); ok {
		acc = e.readEntryChunk(p)
		have = true
	}
	stopSt()
	if !have || acc.Kind == lsm.KindDelta {
		stopIdx := e.Bd.Timer(&e.Bd.Index)
		for _, r := range e.runs {
			if !e.bloomHas(r, tk) {
				continue
			}
			p, ok := r.tree.Get(tk)
			if !ok {
				continue
			}
			ent := e.readEntryChunk(p)
			if have {
				acc = lsm.Merge(tm.Schema, acc, ent)
			} else {
				acc = ent
				have = true
			}
			if acc.Kind != lsm.KindDelta {
				break
			}
		}
		stopIdx()
	}
	if !have || acc.Kind != lsm.KindFull {
		return nil, false, nil
	}
	row, err := core.DecodeRow(tm.Schema, acc.Payload)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

func (e *Engine) bloomHas(r *run, key uint64) bool {
	if r.bloomWords == 0 {
		return true
	}
	d := e.Env.Dev
	ok := true
	bloom.Probes(key, r.bloomK, r.bloomWords*64, func(bit uint64) bool {
		w := d.ReadU64(int64(r.bloomPtr) + int64(bit/64)*8)
		if w&(1<<(bit%64)) == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("nvmlog: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange merges the MemTable and the runs over the key range.
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	if to > core.TreePK(^uint64(0)) {
		hi = core.TreePrimary(tm.ID, core.TreePK(^uint64(0)))
	}
	entries := make(map[uint64][]lsm.Entry)
	var order []uint64
	collect := func(t *nvbtree.Tree) {
		t.Iter(lo, func(k, v uint64) bool {
			if k >= hi {
				return false
			}
			if _, ok := entries[k]; !ok {
				order = append(order, k)
			}
			entries[k] = append(entries[k], e.readEntryChunk(v))
			return true
		})
	}
	collect(e.mem)
	for _, r := range e.runs {
		collect(r.tree)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, k := range order {
		row, exists, _ := lsm.Coalesce(tm.Schema, entries[k])
		if exists {
			if !fn(core.TreePK(k), row) {
				return nil
			}
		}
	}
	return nil
}

// Flush is a no-op: every commit is immediately durable.
func (e *Engine) Flush() error { return nil }

// Compactions returns the number of MemTable merges performed.
func (e *Engine) Compactions() int { return e.compactions }

// Runs returns the number of immutable MemTables.
func (e *Engine) Runs() int { return len(e.runs) }

// Footprint reports storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	u := e.Env.Arena.Usage()
	return core.Footprint{
		Table: u[pmalloc.TagTable],
		Index: u[pmalloc.TagIndex],
		Log:   u[pmalloc.TagLog],
		Other: u[pmalloc.TagOther],
	}
}
