package nvmlog

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "nvm-log",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			opts.MemTableCap = 64 // force rotations and compactions
			opts.LSMGrowth = 3
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			opts.MemTableCap = 64
			opts.LSMGrowth = 3
			return Open(env, schemas, opts)
		},
	})
}

func simpleSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: 100},
		},
	}}
}

func row(i int64) []core.Value {
	return []core.Value{core.IntVal(i), core.IntVal(i * 2), core.StrVal("payload")}
}

func TestRotationAndCompaction(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
	e, err := New(env, simpleSchema(), core.Options{MemTableCap: 50, LSMGrowth: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 600; i++ {
		e.Begin()
		if err := e.Insert("t", uint64(i), row(i)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	if e.Compactions() == 0 {
		t.Error("no compactions after 12 rotations")
	}
	if e.Runs() >= 600/50 {
		t.Errorf("%d immutable runs; compaction not bounding the tree", e.Runs())
	}
	for i := int64(1); i <= 600; i++ {
		r, ok, err := e.Get("t", uint64(i))
		if err != nil || !ok || r[1].I != i*2 {
			t.Fatalf("Get(%d) = %v,%v,%v", i, r, ok, err)
		}
	}
}

func TestImmediateDurabilityAcrossRotation(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
	opts := core.Options{MemTableCap: 40, LSMGrowth: 3}
	e, _ := New(env, simpleSchema(), opts)
	for i := int64(1); i <= 300; i++ {
		e.Begin()
		e.Insert("t", uint64(i), row(i))
		e.Commit()
	}
	// Crash with no Flush: everything committed must survive — the
	// MemTables are already durable, nothing needs rebuilding.
	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, simpleSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 300; i++ {
		r, ok, _ := e2.Get("t", uint64(i))
		if !ok || r[1].I != i*2 {
			t.Fatalf("key %d wrong after crash (ok=%v)", i, ok)
		}
	}
	// Deltas written before the crash coalesce correctly afterwards.
	e2.Begin()
	e2.Update("t", 5, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(999)}})
	e2.Commit()
	r, _, _ := e2.Get("t", 5)
	if r[1].I != 999 || string(r[2].S) != "payload" {
		t.Fatalf("post-recovery update wrong: %v", r)
	}
}

func TestTombstonesReclaimedDuringCompaction(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
	e, _ := New(env, simpleSchema(), core.Options{MemTableCap: 50, LSMGrowth: 2})
	for i := int64(1); i <= 100; i++ {
		e.Begin()
		e.Insert("t", uint64(i), row(i))
		e.Commit()
	}
	for i := int64(1); i <= 100; i++ {
		e.Begin()
		e.Delete("t", uint64(i))
		e.Commit()
	}
	// Force enough churn that everything reaches a compaction.
	for i := int64(1000); i <= 1200; i++ {
		e.Begin()
		e.Insert("t", uint64(i), row(i))
		e.Commit()
	}
	for i := int64(1); i <= 100; i++ {
		if _, ok, _ := e.Get("t", uint64(i)); ok {
			t.Fatalf("deleted key %d visible", i)
		}
	}
	total := 0
	for _, r := range e.runs {
		total += r.tree.Count()
	}
	// After compactions the runs should not hold ~200 entries of dead keys.
	if total > 350 {
		t.Errorf("runs hold %d entries; tombstoned pairs not reclaimed", total)
	}
}

func TestWALTruncatedAtCommit(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, _ := New(env, simpleSchema(), core.Options{})
	e.Begin()
	e.Insert("t", 1, row(1))
	if e.Footprint().Log == 0 {
		t.Error("no WAL footprint during transaction")
	}
	e.Commit()
	if got := e.Footprint().Log; got != 0 {
		t.Errorf("WAL not truncated at commit: %d bytes", got)
	}
}

func TestCrashInjection(t *testing.T) {
	enginetest.RunCrashInjection(t, enginetest.Factory{
		Name: "nvmlog",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}, 25)
}

func confFactory() enginetest.Factory {
	return enginetest.Factory{
		Name: "nvm-log",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, confFactory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, confFactory(), 200)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, confFactory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, confFactory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, confFactory(), 200)
}
