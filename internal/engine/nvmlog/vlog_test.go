package nvmlog

import (
	"strings"
	"sync"
	"testing"

	"nstore/internal/core"
)

func bigSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: 2048},
		},
	}}
}

func bigRow(i int64, n int) []core.Value {
	pat := strings.Repeat(string(rune('a'+i%26)), n)
	return []core.Value{core.IntVal(i), core.IntVal(i * 2), core.StrVal(pat)}
}

// TestVlogSeparationRoundtrip drives large values through write-time
// separation (nvm-log separates in applyMem, not at flush), checks deltas
// coalesce over separated images, and power-cycles twice — once before and
// once after a forced GC pass.
func TestVlogSeparationRoundtrip(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
	opts := core.Options{MemTableCap: 40, LSMGrowth: 3, VlogThreshold: 256, VlogSegSize: 32 << 10}
	e, err := New(env, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 300; i++ {
		e.Begin()
		if err := e.Insert("t", uint64(i), bigRow(i, 600)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.FlushStats(); st.VlogBytes == 0 {
		t.Fatal("no bytes separated; test is vacuous")
	}
	// Delta updates coalesce over separated full images.
	for i := int64(1); i <= 100; i++ {
		e.Begin()
		if err := e.Update("t", uint64(i), core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(i * 7)}}); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	check := func(e *Engine, tag string) {
		t.Helper()
		for i := int64(1); i <= 300; i++ {
			r, ok, err := e.Get("t", uint64(i))
			if err != nil || !ok {
				t.Fatalf("%s: Get(%d) = %v,%v", tag, i, ok, err)
			}
			want := i * 2
			if i <= 100 {
				want = i * 7
			}
			if r[1].I != want || len(r[2].S) != 600 {
				t.Fatalf("%s: key %d wrong row (a=%d want %d, len=%d)", tag, i, r[1].I, want, len(r[2].S))
			}
		}
	}
	check(e, "pre-crash")

	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	check(e2, "post-crash")

	if err := e2.GCVlog(); err != nil {
		t.Fatal(err)
	}
	check(e2, "post-gc")

	env2.Dev.Crash()
	env3, err := env2.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Open(env3, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	check(e3, "post-gc-crash")
}

// TestVlogGCReclaimsDeadSegments deletes half the separated values, churns
// compactions so the discard statistics accumulate, and requires forced GC
// to actually reclaim log space without disturbing the survivors.
func TestVlogGCReclaimsDeadSegments(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
	opts := core.Options{MemTableCap: 30, LSMGrowth: 2, VlogThreshold: 256, VlogSegSize: 16 << 10}
	e, err := New(env, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		e.Begin()
		if err := e.Insert("t", uint64(i), bigRow(i, 500)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	for i := int64(1); i <= 100; i++ {
		e.Begin()
		if err := e.Delete("t", uint64(i)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	// Churn: push the tombstones through compactions so superseded pointers
	// feed the discard stats.
	for i := int64(1000); i <= 1120; i++ {
		e.Begin()
		if err := e.Insert("t", uint64(i), bigRow(i, 500)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	var reclaimed int64
	for pass := 0; pass < 8; pass++ {
		if err := e.GCVlog(); err != nil {
			t.Fatal(err)
		}
		if reclaimed = e.FlushStats().VlogReclaimed; reclaimed > 0 {
			break
		}
	}
	if reclaimed == 0 {
		t.Fatalf("GC never reclaimed a segment (stats: %+v)", e.FlushStats())
	}
	for i := int64(101); i <= 200; i++ {
		r, ok, err := e.Get("t", uint64(i))
		if err != nil || !ok || len(r[2].S) != 500 {
			t.Fatalf("survivor %d wrong after GC: ok=%v err=%v", i, ok, err)
		}
	}
	for i := int64(1); i <= 100; i++ {
		if _, ok, _ := e.Get("t", uint64(i)); ok {
			t.Fatalf("deleted key %d resurrected by GC", i)
		}
	}
	// Repointed records and the shrunken directory must survive recovery.
	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(101); i <= 200; i++ {
		if _, ok, err := e2.Get("t", uint64(i)); !ok || err != nil {
			t.Fatalf("survivor %d lost across post-GC crash: %v", i, err)
		}
	}
}

// TestCloseMidRotation closes the engine while the background worker owns
// queued rotation/compaction work; meaningful under -race. Acked commits
// are NVM-durable at commit, so everything acked must survive reopen.
func TestCloseMidRotation(t *testing.T) {
	for round := 0; round < 4; round++ {
		env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
		opts := core.Options{MemTableCap: 16, LSMGrowth: 2, VlogThreshold: 256, FlushWorkers: 1}
		e, err := New(env, bigSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var acked int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := int64(1); i <= 400; i++ {
				if err := e.Begin(); err != nil {
					return
				}
				if err := e.Insert("t", uint64(i), bigRow(i, 400)); err != nil {
					_ = e.Abort()
					return
				}
				if err := e.Commit(); err != nil {
					return
				}
				mu.Lock()
				acked = i
				mu.Unlock()
			}
		}()
		for {
			mu.Lock()
			n := acked
			mu.Unlock()
			if n >= int64(20+40*round) {
				break
			}
			select {
			case <-done:
			default:
				continue
			}
			break
		}
		if err := e.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		<-done
		mu.Lock()
		n := acked
		mu.Unlock()

		env.Dev.Crash()
		env2, err := env.Reopen()
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Open(env2, bigSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= n; i++ {
			if _, ok, err := e2.Get("t", uint64(i)); !ok || err != nil {
				t.Fatalf("round %d: acked key %d lost after Close (%v)", round, i, err)
			}
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
