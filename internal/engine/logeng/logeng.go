// Package logeng implements the log-structured updates engine (Log, §3.3),
// modelled on LevelDB: changes are batched in a MemTable (with a WAL on the
// filesystem for durability) and periodically flushed as immutable SSTables
// organized in a leveled LSM tree with bloom filters and a compaction
// process that bounds read amplification. Reads reconstruct tuples by
// coalescing entries spread across the MemTable and the runs.
//
// Large values are separated WiscKey-style into an append-only value log
// (internal/vlog): the LSM tree carries (segment, offset, len) pointers, so
// flushes and compactions move only keys and pointers. The flush path is an
// explicit staged pipeline — prepare (freeze the memtable, rotate the WAL
// segment), build (write the SSTable and separate values), install (manifest
// commit), release (WAL-segment delete strictly after the manifest commit) —
// followed by leveled compaction and a discard-stat-driven value-log GC that
// rewrites live records and removes dead segments crash-atomically.
package logeng

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"nstore/internal/btree"
	"nstore/internal/core"
	"nstore/internal/engine/lsm"
	"nstore/internal/mvcc"
	"nstore/internal/pmalloc"
	"nstore/internal/vlog"
)

const (
	walPrefix  = "log.wal"
	vlogPrefix = "vlog-"
	// The manifest alternates between two slot files so the newest valid
	// manifest is never the one being overwritten: a crash mid-write
	// (including a torn fsync) invalidates at most the in-progress slot and
	// recovery falls back to the previous generation, whose SSTables are
	// only removed after the next generation is durable. This replaces a
	// tmp-file + rename swap, which is not crash-atomic on pmfs.
	manifestSlotA = "log.manifest.0"
	manifestSlotB = "log.manifest.1"

	manifestMagic   = 0x4e534d414e463032 // "NSMANF02" (v2: vlog head + L0 list)
	manifestHdrSize = 32                 // magic, gen, payload len (u64) + payload crc (u32) + pad

	// gcMinRatio is the dead-byte fraction at which a sealed value-log
	// segment becomes a GC victim.
	gcMinRatio = 0.5
)

// manCRC is the checksum polynomial for manifest slot validation.
var manCRC = crc32.MakeTable(crc32.Castagnoli)

// frozenMem is a memtable sealed by the prepare stage: immutable, still
// readable, protected by its sealed WAL segment until its SSTable's
// manifest commit releases that segment.
type frozenMem struct {
	tree  *btree.Tree
	count int
	// floor is the highest TxnID the memtable can contain (captured at the
	// freeze). It becomes the manifest's WAL-replay floor when this
	// memtable installs — using the freeze-time floor, not the install-time
	// TxnID, keeps later WAL segments replayable.
	floor uint64
	// walSeq is the sealed WAL segment protecting this memtable; released
	// only after the manifest commit that installs its SSTable.
	walSeq uint64
	// gen orders freezes; value-log segments condemned by GC are deleted
	// once the memtable generation holding their repointed records
	// installs.
	gen       uint64
	submitted bool // a pipeline task is queued/running for it
}

// condemnedSeg is a GC victim awaiting crash-safe deletion: its live
// records were rewritten into memtable generation gen, so it may be removed
// only after that generation's flush installs (release stage).
type condemnedSeg struct {
	seg uint32
	gen uint64
}

// Engine is the log-structured updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts  core.Options
	cache *blockCache

	// mu is the engine monitor: the device/pmfs data path underneath is
	// single-owner, so every public method and every background pipeline
	// task holds it.
	mu sync.Mutex

	mem      *btree.Tree // packed tree key -> memtable entry chunk
	memCount int
	memGen   uint64
	imm      []*frozenMem    // frozen memtables, oldest first
	second   [][]*btree.Tree // volatile secondary indexes

	wal    *core.FsWAL
	vl     *vlog.Manager // nil when value separation is disabled
	l0     []*sstable    // flushed, not yet compacted runs, oldest first
	levels []*sstable    // levels[i] holds one run, ~k^i MemTables big
	seq    uint64
	manGen uint64 // manifest generation (newest valid slot wins)
	// walFloor is the highest TxnID fully contained in the SSTables; WAL
	// records at or below it are stale debris from reused extents.
	walFloor uint64

	fm            *lsm.FlushManager
	compactQueued bool
	gcQueued      bool
	condemned     []condemnedSeg
	fstats        core.FlushStats

	walMark  int
	undo     []memUndo
	secUndo  []secUndo
	txnFrees []pmalloc.Ptr // superseded chunks, freed at commit

	// pendingPtrs are value-log pointers harvested from the manifest runs
	// during recovery, validated once the value log is open.
	pendingPtrs []core.VlogPtr

	compactions int
	closed      bool
}

type memUndo struct {
	key    uint64
	oldPtr uint64 // 0 = key absent before
	newPtr uint64
}

type secUndo struct {
	table, idx int
	composite  uint64
	pk         uint64
	added      bool // true: entry was added (undo = delete)
}

// New creates a fresh Log engine.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	wal, err := core.NewSegmentedFsWAL(env.FS, walPrefix, e.opts.GroupCommitSize)
	if err != nil {
		return nil, err
	}
	if err := wal.UseArenaBuffer(env.Arena); err != nil {
		return nil, err
	}
	e.wal = wal
	e.cache = newBlockCache(env.Arena, 0)
	e.buildVolatile()
	if e.opts.VlogThreshold > 0 {
		b := vlog.NewFSBackend(env.FS, vlogPrefix)
		// Clear stale segments of a previous incarnation.
		if ids, err := b.List(); err == nil {
			for _, id := range ids {
				_ = b.Remove(id)
			}
		}
		vl, err := vlog.Open(b, vlog.Config{SegSize: int64(e.opts.VlogSegSize)})
		if err != nil {
			return nil, err
		}
		e.vl = vl
	}
	e.initFlushManager()
	if err := e.writeManifest(0); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) initFlushManager() {
	e.fm = lsm.NewFlushManager(e.opts.FlushWorkers > 0,
		func() { e.mu.Lock() }, func() { e.mu.Unlock() },
		func(kind string, stage lsm.FlushStage, d time.Duration) {
			// Called with e.mu held in every mode (inline: by the trigger
			// under the caller's lock; background: inside execLocked).
			switch stage {
			case lsm.StagePrepare:
				e.fstats.PrepareNs += d.Nanoseconds()
			case lsm.StageBuild:
				e.fstats.BuildNs += d.Nanoseconds()
			case lsm.StageInstall:
				e.fstats.InstallNs += d.Nanoseconds()
			case lsm.StageRelease:
				e.fstats.ReleaseNs += d.Nanoseconds()
			}
		})
}

func (e *Engine) buildVolatile() {
	e.mem = btree.New(e.Env.Arena, e.opts.BTreeNodeSize)
	e.second = nil
	for _, tm := range e.Tables {
		var secs []*btree.Tree
		for range tm.Schema.Secondary {
			secs = append(secs, btree.New(e.Env.Arena, e.opts.BTreeNodeSize))
		}
		e.second = append(e.second, secs)
	}
}

// Open recovers a Log engine: reopen the SSTables from the manifest, replay
// the value-log head and validate every pointer the runs carry, rebuild the
// MemTable from the WAL segments, remove orphaned runs from interrupted
// flushes/compactions, and rebuild the secondary indexes (§3.3).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	e.cache = newBlockCache(env.Arena, 0)
	e.buildVolatile()

	var head vlog.Head
	if err := e.loadManifest(&head); err != nil {
		return nil, err
	}
	if e.opts.VlogThreshold > 0 {
		workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
		vl, err := vlog.Open(vlog.NewFSBackend(env.FS, vlogPrefix), vlog.Config{
			SegSize: int64(e.opts.VlogSegSize), Workers: workers})
		if err != nil {
			return nil, err
		}
		// Value-log head replay: everything past the manifest-checkpointed
		// durable head is debris (records referenced only by uninstalled
		// SSTables or by memtable repoints lost with the crash).
		if err := vl.RestrictToHead(head); err != nil {
			return nil, err
		}
		e.vl = vl
	}
	if err := e.validatePendingPtrs(); err != nil {
		return nil, err
	}
	e.removeOrphans()

	wal, err := core.OpenSegmentedFsWAL(env.FS, walPrefix, e.opts.GroupCommitSize)
	if err != nil {
		return nil, err
	}
	e.wal = wal
	maxTxn, err := e.replayWAL()
	if err != nil {
		return nil, err
	}
	e.TxnID = maxTxn
	if e.walFloor > e.TxnID {
		e.TxnID = e.walFloor
	}
	e.initFlushManager()
	if err := e.rebuildSecondaries(); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// validatePendingPtrs vets every value-log pointer harvested from the
// manifest runs: a pointer into a segment that no longer exists is legal
// (GC removed it and the entry is shadowed), but a pointer past a live
// segment's valid prefix means durable data vanished.
func (e *Engine) validatePendingPtrs() error {
	if len(e.pendingPtrs) == 0 {
		return nil
	}
	if e.vl == nil {
		return core.Corrupt(fmt.Errorf("logeng: manifest runs carry value-log pointers but separation is disabled"))
	}
	for _, p := range e.pendingPtrs {
		if err := e.vl.Validate(p); err != nil {
			return err
		}
	}
	e.pendingPtrs = nil
	return nil
}

func (e *Engine) replayWAL() (uint64, error) {
	return e.wal.ReplaySegments(e.walFloor, func(r core.WalRecord) error {
		e.Rec.Records++
		tk := core.TreePrimary(r.Table, r.Key)
		var ent lsm.Entry
		switch r.Type {
		case core.WalInsert:
			ent = lsm.Entry{Kind: lsm.KindFull, Payload: r.After}
		case core.WalUpdate:
			ent = lsm.Entry{Kind: lsm.KindDelta, Payload: r.After}
		case core.WalDelete:
			ent = lsm.Entry{Kind: lsm.KindTomb}
		default:
			return nil
		}
		oldPtr, _, err := e.putMem(e.Tables[r.Table].Schema, tk, ent)
		if err != nil {
			return err
		}
		if oldPtr != 0 {
			e.Env.Arena.Free(oldPtr)
		}
		return nil
	})
}

func (e *Engine) rebuildSecondaries() error {
	for _, tm := range e.Tables {
		if len(tm.Schema.Secondary) == 0 {
			continue
		}
		err := e.scanRange(tm.Schema.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			for j, ix := range tm.Schema.Secondary {
				e.second[tm.ID][j].Put(core.SecComposite(ix.SecKey(row), pk), pk)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// MemTable entry chunks: kind u8, len u32, payload.

func (e *Engine) writeEntryChunk(ent lsm.Entry) (pmalloc.Ptr, error) {
	p, err := e.Env.Arena.Alloc(5+len(ent.Payload), pmalloc.TagTable)
	if err != nil {
		// Table-arena exhaustion is reachable from normal traffic: surface
		// it so the transaction can abort cleanly instead of panicking.
		return 0, err
	}
	dev := e.Env.Dev
	dev.WriteU8(int64(p), ent.Kind)
	dev.WriteU32(int64(p)+1, uint32(len(ent.Payload)))
	dev.Write(int64(p)+5, ent.Payload)
	return p, nil
}

func (e *Engine) readEntryChunk(p uint64) lsm.Entry {
	dev := e.Env.Dev
	kind := dev.ReadU8(int64(p))
	n := int(dev.ReadU32(int64(p) + 1))
	payload := make([]byte, n)
	dev.Read(int64(p)+5, payload)
	return lsm.Entry{Kind: kind, Payload: payload}
}

// discardIfPtr feeds the value log's discard stats when a chunk holding a
// separated-value pointer is superseded or rolled back.
func (e *Engine) discardIfPtr(chunk uint64) {
	if e.vl == nil || chunk == 0 {
		return
	}
	if e.Env.Dev.ReadU8(int64(chunk)) != lsm.KindFullPtr {
		return
	}
	var buf [core.VlogPtrSize]byte
	e.Env.Dev.Read(int64(chunk)+5, buf[:])
	if ptr, ok := core.DecodeVlogPtr(buf[:]); ok {
		e.vl.Discard(ptr.Seg, vlog.DiscardOf(ptr))
	}
}

// resolveEntry is the lsm.Resolver: it materializes a KindFullPtr entry by
// reading the value log.
func (e *Engine) resolveEntry(key uint64, ent lsm.Entry) (lsm.Entry, error) {
	ptr, ok := core.DecodeVlogPtr(ent.Payload)
	if !ok {
		return lsm.Entry{}, core.Corrupt(fmt.Errorf("logeng: malformed value-log pointer for key %d", key))
	}
	if e.vl == nil {
		return lsm.Entry{}, core.Corrupt(fmt.Errorf("logeng: value-log pointer for key %d with separation disabled", key))
	}
	val, err := e.vl.Read(ptr, key)
	if err != nil {
		return lsm.Entry{}, err
	}
	return lsm.Entry{Kind: lsm.KindFull, Payload: val}, nil
}

// putMem merges ent over any existing memtable entry for tk and installs
// the merged chunk. The superseded chunk is returned for deferred freeing.
func (e *Engine) putMem(s *core.Schema, tk uint64, ent lsm.Entry) (oldPtr, newPtr uint64, err error) {
	if old, ok := e.mem.Get(tk); ok {
		merged, err := lsm.MergeR(s, tk, ent, e.readEntryChunk(old), e.resolveEntry)
		if err != nil {
			return 0, 0, err
		}
		np, err := e.writeEntryChunk(merged)
		if err != nil {
			return 0, 0, err
		}
		e.mem.Put(tk, np)
		return old, np, nil
	}
	np, err := e.writeEntryChunk(ent)
	if err != nil {
		return 0, 0, err
	}
	e.mem.Put(tk, np)
	e.memCount++
	return 0, np, nil
}

// Name returns "log".
func (e *Engine) Name() string { return "log" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.walMark = e.wal.Mark()
	e.undo = e.undo[:0]
	e.secUndo = e.secUndo[:0]
	e.txnFrees = e.txnFrees[:0]
	return nil
}

// Commit group-commits the WAL; when the MemTable is full it runs the
// staged flush pipeline (inline or queued on the background worker). A
// pipeline failure after the commit barrier is surfaced to the caller, but
// the transaction IS durable: the frozen memtable and its WAL segment stay
// retained, and the next commit retries the flush.
func (e *Engine) Commit() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	err := e.wal.TxnCommitted(e.TxnID)
	stop()
	if err != nil {
		// The commit record never became durable; the txn's memtable and
		// index changes are still undoable. Roll back and end the txn so
		// the caller can Begin again and retry.
		if rerr := e.rollback(); rerr != nil {
			return core.Corrupt(errors.Join(err, rerr))
		}
		return err
	}
	e.MV.CommitStaged(e.TxnID, e.wal.PendingTxns() == 0)
	for _, p := range e.txnFrees {
		e.discardIfPtr(uint64(p))
		e.Env.Arena.Free(p)
	}
	e.txnFrees = e.txnFrees[:0]
	var flushErr error
	if e.memCount >= e.opts.MemTableCap || e.hasUnsubmitted() {
		flushErr = e.triggerFlush(e.memCount >= e.opts.MemTableCap)
	}
	if flushErr == nil {
		flushErr = e.fm.TakeErr()
	}
	endErr := e.EndTx()
	if flushErr != nil {
		// The transaction committed; only the pipeline failed. The caller
		// may retry the flush (or just keep committing) — acked commits
		// stay durable via the retained WAL segments.
		return flushErr
	}
	return endErr
}

// Abort rolls back memtable and secondary-index changes.
func (e *Engine) Abort() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	return e.rollback()
}

// rollback undoes the running transaction's memtable and secondary-index
// changes, drops its buffered WAL records, and ends the transaction. Shared
// by Abort and the commit-failure path, so every exit leaves the engine
// ready for Begin.
func (e *Engine) rollback() error {
	for i := len(e.undo) - 1; i >= 0; i-- {
		u := e.undo[i]
		if u.oldPtr != 0 {
			e.mem.Put(u.key, u.oldPtr)
		} else {
			e.mem.Delete(u.key)
			e.memCount--
		}
		e.discardIfPtr(u.newPtr)
		e.Env.Arena.Free(u.newPtr)
	}
	for i := len(e.secUndo) - 1; i >= 0; i-- {
		u := e.secUndo[i]
		if u.added {
			e.second[u.table][u.idx].Delete(u.composite)
		} else {
			e.second[u.table][u.idx].Put(u.composite, u.pk)
		}
	}
	e.wal.DropTail(e.walMark)
	e.MV.DropStaged()
	e.txnFrees = e.txnFrees[:0]
	return e.EndTx()
}

func (e *Engine) secAdd(tm *core.TableMeta, j int, sec uint32, pk uint64) {
	c := core.SecComposite(sec, pk)
	e.second[tm.ID][j].Put(c, pk)
	e.secUndo = append(e.secUndo, secUndo{table: tm.ID, idx: j, composite: c, pk: pk, added: true})
}

func (e *Engine) secDel(tm *core.TableMeta, j int, sec uint32, pk uint64) {
	c := core.SecComposite(sec, pk)
	e.second[tm.ID][j].Delete(c)
	e.secUndo = append(e.secUndo, secUndo{table: tm.ID, idx: j, composite: c, pk: pk, added: false})
}

// applyMem routes one logical change through the memtable with undo
// tracking.
func (e *Engine) applyMem(tm *core.TableMeta, key uint64, ent lsm.Entry) error {
	tk := core.TreePrimary(tm.ID, key)
	oldPtr, newPtr, err := e.putMem(tm.Schema, tk, ent)
	if err != nil {
		return err
	}
	e.undo = append(e.undo, memUndo{key: tk, oldPtr: oldPtr, newPtr: newPtr})
	if oldPtr != 0 {
		e.txnFrees = append(e.txnFrees, pmalloc.Ptr(oldPtr))
	}
	return nil
}

// Insert adds a tuple.
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	_, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if exists {
		return core.ErrKeyExists
	}
	img := core.EncodeRow(tm.Schema, row)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalInsert, TxnID: e.TxnID,
		Table: tm.ID, Key: key, After: img})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindFull, Payload: img})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	for j, ix := range tm.Schema.Secondary {
		e.secAdd(tm, j, ix.SecKey(row), key)
	}
	stopIdx()
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update records the updated fields as a delta entry.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	beforeUpd := core.Update{Cols: upd.Cols, Vals: make([]core.Value, len(upd.Cols))}
	for j, ci := range upd.Cols {
		beforeUpd.Vals[j] = old[ci]
	}
	delta := core.EncodeDelta(tm.Schema, upd)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalUpdate, TxnID: e.TxnID,
		Table: tm.ID, Key: key,
		Before: core.EncodeDelta(tm.Schema, beforeUpd), After: delta})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindDelta, Payload: delta})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			e.secDel(tm, j, ok, key)
			e.secAdd(tm, j, nk, key)
		}
	}
	stopIdx()
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete marks the tuple with a tombstone; space is reclaimed during
// compaction (§3.3).
func (e *Engine) Delete(table string, key uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalDelete, TxnID: e.TxnID,
		Table: tm.ID, Key: key, Before: core.EncodeRow(tm.Schema, old)})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindTomb})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	for j, ix := range tm.Schema.Secondary {
		e.secDel(tm, j, ix.SecKey(old), key)
	}
	stopIdx()
	e.MV.StageDelete(table, key)
	return nil
}

// chain collects the entries for a tree key newest-first — memtable, frozen
// memtables, L0 runs, then the levels — stopping at the first non-delta
// (terminal) entry.
func (e *Engine) chain(tk uint64) ([]lsm.Entry, error) {
	var entries []lsm.Entry
	add := func(ent lsm.Entry) bool {
		entries = append(entries, ent)
		return ent.Kind != lsm.KindDelta
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if p, ok := e.mem.Get(tk); ok && add(e.readEntryChunk(p)) {
		stopSt()
		return entries, nil
	}
	for i := len(e.imm) - 1; i >= 0; i-- {
		if p, ok := e.imm[i].tree.Get(tk); ok && add(e.readEntryChunk(p)) {
			stopSt()
			return entries, nil
		}
	}
	stopSt()
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for i := len(e.l0) - 1; i >= 0; i-- {
		ent, ok, err := e.l0[i].get(e.cache, e.Env.Dev, tk)
		if err != nil {
			return nil, err
		}
		if ok && add(ent) {
			return entries, nil
		}
	}
	for _, run := range e.levels {
		if run == nil {
			continue
		}
		ent, ok, err := run.get(e.cache, e.Env.Dev, tk)
		if err != nil {
			return nil, err
		}
		if ok && add(ent) {
			return entries, nil
		}
	}
	return entries, nil
}

// Get reconstructs a tuple by coalescing entries from the MemTable and the
// LSM runs, newest first, stopping at the first full image or tombstone.
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.get(table, key)
}

func (e *Engine) get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	tk := core.TreePrimary(tm.ID, key)
	entries, err := e.chain(tk)
	if err != nil {
		return nil, false, err
	}
	row, exists, _, err := lsm.CoalesceR(tm.Schema, tk, entries, e.resolveEntry)
	if err != nil {
		return nil, false, err
	}
	return row, exists, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("logeng: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange merges the MemTable, the frozen memtables, and every run over
// the key range, coalescing per key.
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.scanRange(table, from, to, fn)
}

func (e *Engine) scanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	if to > core.TreePK(^uint64(0)) {
		hi = core.TreePrimary(tm.ID, core.TreePK(^uint64(0)))
	}

	// Tree-backed sources sliced over the range, newest first: the active
	// memtable, then frozen memtables newest to oldest (memtables are
	// small).
	type kv struct {
		k uint64
		e lsm.Entry
	}
	collect := func(t *btree.Tree) []kv {
		var out []kv
		t.Iter(lo, func(k, p uint64) bool {
			if k >= hi {
				return false
			}
			out = append(out, kv{k, e.readEntryChunk(p)})
			return true
		})
		return out
	}
	var memSrcs [][]kv
	memSrcs = append(memSrcs, collect(e.mem))
	for i := len(e.imm) - 1; i >= 0; i-- {
		memSrcs = append(memSrcs, collect(e.imm[i].tree))
	}
	memIdx := make([]int, len(memSrcs))

	// Run-backed sources, newest first: L0 newest to oldest, then levels
	// shallow to deep.
	var iters []*sstIter
	addRun := func(run *sstable) error {
		pos, err := run.lowerBound(e.cache, lo)
		if err != nil {
			return err
		}
		iters = append(iters, &sstIter{t: run, c: e.cache, pos: pos})
		return nil
	}
	for i := len(e.l0) - 1; i >= 0; i-- {
		if err := addRun(e.l0[i]); err != nil {
			return err
		}
	}
	for _, run := range e.levels {
		if run == nil {
			continue
		}
		if err := addRun(run); err != nil {
			return err
		}
	}

	for {
		// Find the smallest next key across sources.
		minKey := ^uint64(0)
		for s, src := range memSrcs {
			if memIdx[s] < len(src) && src[memIdx[s]].k < minKey {
				minKey = src[memIdx[s]].k
			}
		}
		for _, it := range iters {
			if !it.valid() {
				continue
			}
			k, _, err := it.entry()
			if err != nil {
				return err
			}
			if k < minKey {
				minKey = k
			}
		}
		if minKey >= hi {
			return nil
		}
		// Gather entries for minKey, newest source first.
		var entries []lsm.Entry
		for s, src := range memSrcs {
			if memIdx[s] < len(src) && src[memIdx[s]].k == minKey {
				entries = append(entries, src[memIdx[s]].e)
				memIdx[s]++
			}
		}
		for _, it := range iters {
			if !it.valid() {
				continue
			}
			k, ent, err := it.entry()
			if err != nil {
				return err
			}
			if k == minKey {
				entries = append(entries, ent)
				it.next()
			}
		}
		row, exists, _, err := lsm.CoalesceR(tm.Schema, minKey, entries, e.resolveEntry)
		if err != nil {
			return err
		}
		if exists {
			if !fn(core.TreePK(minKey), row) {
				return nil
			}
		}
	}
}

// Flush forces the pending group commit (not a MemTable flush).
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := e.wal.Flush(); err != nil {
		return err
	}
	e.MV.PublishDurable()
	return nil
}

// FlushMemTable forces the MemTable through the full pipeline (test/bench
// hook), draining background workers before returning.
func (e *Engine) FlushMemTable() error {
	e.mu.Lock()
	err := e.triggerFlush(true)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	e.fm.Drain()
	return e.fm.TakeErr()
}

// Close drains in-flight background flush/compaction work, then marks the
// engine closed. It must be called without e.mu held: the worker needs the
// monitor to finish its current task.
func (e *Engine) Close() error {
	e.fm.Close()
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return e.fm.TakeErr()
}

// WalStats exposes the WAL's cumulative counters (core.WalStatser).
func (e *Engine) WalStats() core.WalStats { return e.wal.Stats() }

// FlushStats exposes the staged-pipeline and value-log counters
// (core.FlushStatser).
func (e *Engine) FlushStats() core.FlushStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.fstats
	if e.vl != nil {
		vs := e.vl.Stats()
		st.VlogSegments = int64(vs.Segments)
		st.VlogBytes = vs.Bytes
		st.VlogDiscard = vs.Discard
		st.VlogReclaimed = vs.Reclaimed
	}
	return st
}

// Compactions returns the number of merge compactions performed.
func (e *Engine) Compactions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactions
}

// GCVlog forces one value-log GC pass over the deadest sealed segment, if
// any qualifies (test/bench hook). The condemned segment is deleted once
// the memtable generation holding its repointed records installs.
func (e *Engine) GCVlog() error {
	e.mu.Lock()
	e.submitGC(0)
	e.mu.Unlock()
	e.fm.Drain()
	return e.fm.TakeErr()
}

// hasUnsubmitted reports whether a frozen memtable is awaiting (re)submission
// after a pipeline failure.
func (e *Engine) hasUnsubmitted() bool {
	for _, fz := range e.imm {
		if !fz.submitted {
			return true
		}
	}
	return false
}

// triggerFlush runs the prepare stage and submits pipeline tasks: first any
// frozen memtable whose earlier task failed (retry, in order), then — when
// freeze is set — the active memtable. Caller holds e.mu.
func (e *Engine) triggerFlush(freeze bool) error {
	for _, fz := range e.imm {
		if !fz.submitted {
			fz.submitted = true
			if err := e.fm.Submit(e.flushTask(fz)); err != nil {
				return err
			}
		}
	}
	if !freeze || e.memCount == 0 {
		return nil
	}
	start := time.Now()
	fz, err := e.freeze()
	e.fm.Observe("flush", lsm.StagePrepare, time.Since(start))
	if err != nil {
		return err
	}
	fz.submitted = true
	return e.fm.Submit(e.flushTask(fz))
}

// freeze is the prepare stage: flush the group buffer (the durability
// barrier), seal the WAL segment, and swap in a fresh memtable. The frozen
// memtable stays readable until its SSTable installs.
func (e *Engine) freeze() (*frozenMem, error) {
	if err := e.wal.Flush(); err != nil {
		return nil, err
	}
	e.MV.PublishDurable()
	sealed, err := e.wal.Rotate()
	if err != nil {
		return nil, err
	}
	fz := &frozenMem{tree: e.mem, count: e.memCount, floor: e.TxnID, walSeq: sealed, gen: e.memGen}
	e.memGen++
	e.imm = append(e.imm, fz)
	e.mem = btree.New(e.Env.Arena, e.opts.BTreeNodeSize)
	e.memCount = 0
	return fz, nil
}

// flushTask builds the pipeline task for one frozen memtable: build writes
// the SSTable (separating large values into the value log), install appends
// it to L0 and commits the manifest, release deletes the WAL segment and
// frees the memtable. Build/install failures put the memtable back up for
// retry; its WAL segment is still live, so acked commits stay durable.
func (e *Engine) flushTask(fz *frozenMem) *lsm.FlushTask {
	var run *sstable
	var freeList []uint64
	var appended []core.VlogPtr
	t := &lsm.FlushTask{Kind: "flush"}

	fail := func(name string, err error) error {
		// Undo build side effects: the partial SSTable file and the value
		// bytes appended for it (they become dead weight the GC can count).
		if name != "" {
			e.cache.drop(name)
			_ = e.Env.FS.Remove(name)
		}
		for _, p := range appended {
			e.vl.Discard(p.Seg, vlog.DiscardOf(p))
		}
		appended = appended[:0]
		freeList = freeList[:0]
		run = nil
		fz.submitted = false
		e.fstats.Failures++
		return err
	}

	t.Build = func() error {
		stop := e.Bd.Timer(&e.Bd.Storage)
		defer stop()
		e.seq++
		name := fmt.Sprintf("sst-%06d", e.seq)
		w, err := newSSTWriter(e.Env.FS, name)
		if err != nil {
			return fail("", err)
		}
		fz.tree.Iter(0, func(k, p uint64) bool {
			ent := e.readEntryChunk(p)
			if e.vl != nil && ent.Kind == lsm.KindFull && len(ent.Payload) >= e.opts.VlogThreshold {
				ptr, aerr := e.vl.Append(k, ent.Payload)
				if aerr != nil {
					err = aerr
					return false
				}
				appended = append(appended, ptr)
				ent = lsm.Entry{Kind: lsm.KindFullPtr, Payload: ptr.Encode(nil)}
			}
			w.add(k, ent)
			freeList = append(freeList, p)
			return true
		})
		if err != nil {
			return fail(name, err)
		}
		if e.vl != nil {
			// Value records must be durable before the manifest that
			// installs pointers to them.
			if err := e.vl.Sync(); err != nil {
				return fail(name, err)
			}
		}
		if err := w.finish(); err != nil {
			return fail(name, err)
		}
		run, err = openSSTable(e.Env.FS, e.Env.Arena, name)
		if err != nil {
			return fail(name, err)
		}
		return nil
	}

	t.Install = func() error {
		// FIFO discipline: an older frozen memtable whose task failed must
		// install first, or the manifest floor would advance past its WAL
		// segment and replay would skip it.
		if len(e.imm) == 0 || e.imm[0] != fz {
			return fail(run.name, core.Retryable(fmt.Errorf("logeng: earlier memtable flush pending")))
		}
		e.l0 = append(e.l0, run)
		if err := e.writeManifest(fz.floor); err != nil {
			e.l0 = e.l0[:len(e.l0)-1]
			return fail(run.name, err)
		}
		e.imm = e.imm[1:]
		return nil
	}

	t.Release = func() error {
		// Strictly after the manifest commit: the flushed data is now
		// re-creatable from the SSTable, so the WAL segment may go.
		if err := e.wal.ReleaseThrough(fz.walSeq); err != nil {
			return err
		}
		for _, p := range freeList {
			e.Env.Arena.Free(pmalloc.Ptr(p))
		}
		fz.tree.Release()
		e.releaseCondemned(fz.gen)
		e.fstats.Flushes++
		// Chain the leveled compaction (and possibly a GC pass behind it).
		return e.submitCompact()
	}
	return t
}

// releaseCondemned deletes GC victim segments whose repointed records are
// now installed (their memtable generation <= gen just released).
func (e *Engine) releaseCondemned(gen uint64) {
	kept := e.condemned[:0]
	for _, c := range e.condemned {
		if c.gen <= gen {
			_ = e.vl.Remove(c.seg)
		} else {
			kept = append(kept, c)
		}
	}
	e.condemned = kept
}

// submitCompact queues a leveled compaction folding every L0 run into the
// levels (one run per level, each deeper run larger). Caller holds e.mu.
func (e *Engine) submitCompact() error {
	if e.compactQueued || len(e.l0) == 0 {
		return nil
	}
	e.compactQueued = true
	var l0n, rest int
	var cur *sstable
	var obsolete []*sstable
	t := &lsm.FlushTask{Kind: "compact"}

	fail := func(err error) error {
		// Drop intermediate runs the cascade produced; input runs (still
		// referenced from l0/levels and the durable manifest) stay.
		isInput := func(t *sstable) bool {
			for _, r := range e.l0 {
				if r == t {
					return true
				}
			}
			for _, r := range e.levels {
				if r == t {
					return true
				}
			}
			return false
		}
		for _, o := range obsolete {
			if o != nil && o != cur && !isInput(o) {
				o.release(e.Env.Arena, e.cache)
				_ = e.Env.FS.Remove(o.name)
			}
		}
		if cur != nil && !isInput(cur) {
			cur.release(e.Env.Arena, e.cache)
			_ = e.Env.FS.Remove(cur.name)
		}
		cur, obsolete = nil, nil
		e.compactQueued = false
		e.fstats.Failures++
		return err
	}

	t.Build = func() error {
		stop := e.Bd.Timer(&e.Bd.Storage)
		defer stop()
		l0n = len(e.l0)
		cur = e.l0[l0n-1]
		fold := func(older *sstable, dropTombs bool) error {
			merged, err := e.mergeRuns(cur, older, dropTombs)
			if err != nil {
				return err
			}
			obsolete = append(obsolete, cur, older)
			cur = merged
			e.compactions++
			return nil
		}
		// Newer L0 runs fold over older ones, then cascade into the levels.
		for i := l0n - 2; i >= 0; i-- {
			if err := fold(e.l0[i], false); err != nil {
				return fail(err)
			}
		}
		rest = 0
		for rest < len(e.levels) && e.levels[rest] != nil {
			rest++
		}
		deeper := false
		for j := rest + 1; j < len(e.levels); j++ {
			if e.levels[j] != nil {
				deeper = true
			}
		}
		for i := 0; i < rest; i++ {
			// Tombstones may only be dropped on the final merge of the
			// cascade, and only when no deeper run could still hold the
			// shadowed tuples.
			if err := fold(e.levels[i], i == rest-1 && !deeper); err != nil {
				return fail(err)
			}
		}
		return nil
	}

	t.Install = func() error {
		savedL0, savedLevels := e.l0, append([]*sstable(nil), e.levels...)
		e.l0 = append([]*sstable(nil), e.l0[l0n:]...)
		for i := 0; i < rest; i++ {
			e.levels[i] = nil
		}
		for len(e.levels) <= rest {
			e.levels = append(e.levels, nil)
		}
		e.levels[rest] = cur
		if err := e.writeManifest(e.walFloor); err != nil {
			e.l0, e.levels = savedL0, savedLevels
			return fail(err)
		}
		return nil
	}

	t.Release = func() error {
		for _, o := range obsolete {
			o.release(e.Env.Arena, e.cache)
			_ = e.Env.FS.Remove(o.name)
		}
		e.compactQueued = false
		e.fstats.Compactions++
		// Compaction discard stats may have pushed a segment over the GC
		// threshold.
		e.submitGC(gcMinRatio)
		return nil
	}
	if err := e.fm.Submit(t); err != nil {
		e.compactQueued = false
		if errors.Is(err, lsm.ErrClosed) {
			// Shutdown race: the release stage of the last in-flight flush
			// chains a compaction after Close. The L0 runs are durable in the
			// manifest; the next open compacts them.
			return nil
		}
		return err
	}
	return nil
}

// submitGC queues a value-log GC pass if a sealed segment's dead ratio
// reaches minRatio (0 forces the best victim regardless). Caller holds
// e.mu.
func (e *Engine) submitGC(minRatio float64) {
	if e.vl == nil || e.gcQueued {
		return
	}
	victim, ok := e.vl.PickVictim(minRatio)
	if !ok {
		return
	}
	e.gcQueued = true
	t := &lsm.FlushTask{Kind: "gc"}
	t.Build = func() error {
		defer func() { e.gcQueued = false }()
		if e.opts.FlushWorkers > 0 && e.InTx {
			// A background GC pass must not fold an in-flight transaction's
			// uncommitted memtable entries into rewritten records (its
			// rollback would resurrect pointers into the removed segment).
			// Skip; the next trigger re-picks the victim.
			return nil
		}
		if !e.vl.Has(victim) {
			return nil
		}
		if err := e.gcSegment(victim); err != nil {
			e.fstats.Failures++
			return err
		}
		e.fstats.GCRuns++
		e.vl.NoteGCRun()
		return nil
	}
	// Submit failure (manager closed) just skips the pass.
	if err := e.fm.Submit(t); err != nil {
		e.gcQueued = false
	}
}

// gcSegment rewrites the victim's live records to the value-log tail and
// repoints them through the memtable, then condemns the segment. The
// deletion itself waits until the repointing memtable generation installs:
// a crash any time before that leaves the old pointers valid (the victim
// still exists), a crash after reads the repointed entries — never a
// dangling pointer.
func (e *Engine) gcSegment(victim uint32) error {
	gen := e.memGen
	err := e.vl.Scan(victim, func(key uint64, ptr core.VlogPtr, val []byte) error {
		entries, err := e.chain(key)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return nil
		}
		term := entries[len(entries)-1]
		if term.Kind != lsm.KindFullPtr {
			return nil // dead: shadowed by a newer full image or tombstone
		}
		tp, ok := core.DecodeVlogPtr(term.Payload)
		if !ok || tp != ptr {
			return nil // dead: the live chain points elsewhere
		}
		tm := e.Tables[core.TreeTable(key)]
		row, exists, _, err := lsm.CoalesceR(tm.Schema, key, entries, e.resolveEntry)
		if err != nil {
			return err
		}
		if !exists {
			return nil
		}
		img := core.EncodeRow(tm.Schema, row)
		var ent lsm.Entry
		if len(img) >= e.opts.VlogThreshold {
			nptr, err := e.vl.Append(key, img)
			if err != nil {
				return err
			}
			ent = lsm.Entry{Kind: lsm.KindFullPtr, Payload: nptr.Encode(nil)}
		} else {
			ent = lsm.Entry{Kind: lsm.KindFull, Payload: img}
		}
		// Repoint through the memtable without a WAL record: if the crash
		// eats the memtable, the old pointer chain is still intact because
		// the victim is only deleted after this generation installs.
		oldPtr, _, err := e.putMem(tm.Schema, key, ent)
		if err != nil {
			return err
		}
		if oldPtr != 0 {
			e.discardIfPtr(oldPtr)
			e.Env.Arena.Free(pmalloc.Ptr(oldPtr))
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.condemned = append(e.condemned, condemnedSeg{seg: victim, gen: gen})
	return nil
}

// mergeRuns merges a newer run over an older one into a fresh SSTable.
// Value-log pointers flow through opaquely unless a delta lands on one;
// superseded pointers feed the discard statistics that drive GC.
func (e *Engine) mergeRuns(newer, older *sstable, dropTombs bool) (*sstable, error) {
	e.seq++
	name := fmt.Sprintf("sst-%06d", e.seq)
	w, err := newSSTWriter(e.Env.FS, name)
	if err != nil {
		return nil, err
	}
	a := &sstIter{t: newer, c: e.cache}
	b := &sstIter{t: older, c: e.cache}
	emit := func(k uint64, ent lsm.Entry) {
		if dropTombs && ent.Kind == lsm.KindTomb {
			return
		}
		w.add(k, ent)
	}
	for a.valid() || b.valid() {
		switch {
		case !b.valid():
			k, ent, err := a.entry()
			if err != nil {
				return nil, err
			}
			emit(k, ent)
			a.next()
		case !a.valid():
			k, ent, err := b.entry()
			if err != nil {
				return nil, err
			}
			emit(k, ent)
			b.next()
		default:
			ka, ea, err := a.entry()
			if err != nil {
				return nil, err
			}
			kb, eb, err := b.entry()
			if err != nil {
				return nil, err
			}
			switch {
			case ka < kb:
				emit(ka, ea)
				a.next()
			case kb < ka:
				emit(kb, eb)
				b.next()
			default:
				// Schema for Merge: decode the table from the packed key.
				tm := e.Tables[core.TreeTable(ka)]
				merged, err := lsm.MergeR(tm.Schema, ka, ea, eb, e.resolveEntry)
				if err != nil {
					return nil, err
				}
				if eb.Kind == lsm.KindFullPtr && e.vl != nil {
					// The older separated value is superseded: its log
					// bytes are dead.
					if ptr, ok := core.DecodeVlogPtr(eb.Payload); ok {
						e.vl.Discard(ptr.Seg, vlog.DiscardOf(ptr))
					}
				}
				emit(ka, merged)
				a.next()
				b.next()
			}
		}
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	return openSSTable(e.Env.FS, e.Env.Arena, name)
}

// Manifest payload (v2): seq u64, txnFloor u64, vlogSeg u32, vlogOff u64,
// l0Count u32 + {nameLen u32, name}, levelCount u32 + {level u32,
// nameLen u32, name}. The payload sits behind a slot header (magic,
// generation, length, CRC); the newest valid slot wins at open.

func (e *Engine) writeManifest(floor uint64) error {
	if floor < e.walFloor {
		floor = e.walFloor
	}
	var buf []byte
	var b8 [8]byte
	var b4 [4]byte
	binary.LittleEndian.PutUint64(b8[:], e.seq)
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], floor)
	buf = append(buf, b8[:]...)
	var head vlog.Head
	if e.vl != nil {
		head = e.vl.HeadMark()
	}
	binary.LittleEndian.PutUint32(b4[:], head.Seg)
	buf = append(buf, b4[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(head.Off))
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(e.l0)))
	buf = append(buf, b4[:]...)
	for _, run := range e.l0 {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(run.name)))
		buf = append(buf, b4[:]...)
		buf = append(buf, run.name...)
	}
	var entries [][]byte
	for i, run := range e.levels {
		if run == nil {
			continue
		}
		var ent []byte
		binary.LittleEndian.PutUint32(b4[:], uint32(i))
		ent = append(ent, b4[:]...)
		binary.LittleEndian.PutUint32(b4[:], uint32(len(run.name)))
		ent = append(ent, b4[:]...)
		ent = append(ent, run.name...)
		entries = append(entries, ent)
	}
	binary.LittleEndian.PutUint32(b4[:], uint32(len(entries)))
	buf = append(buf, b4[:]...)
	for _, ent := range entries {
		buf = append(buf, ent...)
	}

	gen := e.manGen + 1
	img := make([]byte, manifestHdrSize+len(buf))
	binary.LittleEndian.PutUint64(img[0:], manifestMagic)
	binary.LittleEndian.PutUint64(img[8:], gen)
	binary.LittleEndian.PutUint64(img[16:], uint64(len(buf)))
	binary.LittleEndian.PutUint32(img[24:], crc32.Checksum(buf, manCRC))
	copy(img[manifestHdrSize:], buf)

	// Generation parity picks the slot NOT holding the newest valid
	// manifest; manGen only advances on durable success, so a failed
	// attempt retries into the same (expendable) slot.
	slot := manifestSlotA
	if gen%2 == 1 {
		slot = manifestSlotB
	}
	f, err := e.Env.FS.OpenOrCreate(slot)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	e.manGen = gen
	e.walFloor = floor
	return nil
}

// readManifestSlot validates one slot file; ok is false for a missing,
// torn, or corrupt slot (all expected after a crash).
func (e *Engine) readManifestSlot(name string) (gen uint64, payload []byte, ok bool) {
	f, err := e.Env.FS.OpenFile(name)
	if err != nil {
		return 0, nil, false
	}
	size := f.Size()
	if size < manifestHdrSize {
		return 0, nil, false
	}
	img := make([]byte, size)
	if _, err := f.ReadAt(img, 0); err != nil {
		return 0, nil, false
	}
	if binary.LittleEndian.Uint64(img[0:]) != manifestMagic {
		return 0, nil, false
	}
	gen = binary.LittleEndian.Uint64(img[8:])
	plen := binary.LittleEndian.Uint64(img[16:])
	if plen > uint64(size-manifestHdrSize) {
		return 0, nil, false
	}
	payload = img[manifestHdrSize : manifestHdrSize+int(plen)]
	if crc32.Checksum(payload, manCRC) != binary.LittleEndian.Uint32(img[24:]) {
		return 0, nil, false
	}
	return gen, payload, true
}

// loadManifest restores state from the newest valid manifest slot. No
// valid slot means no MemTable flush ever completed (or the very first
// manifest write tore): the WAL still holds every committed transaction,
// so starting with empty levels is correct.
func (e *Engine) loadManifest(head *vlog.Head) error {
	gen, buf, ok := e.readManifestSlot(manifestSlotA)
	if g2, b2, ok2 := e.readManifestSlot(manifestSlotB); ok2 && (!ok || g2 > gen) {
		gen, buf, ok = g2, b2, true
	}
	if !ok {
		return nil
	}
	e.manGen = gen
	if len(buf) < 32 {
		return fmt.Errorf("logeng: manifest payload truncated")
	}
	e.seq = binary.LittleEndian.Uint64(buf)
	e.walFloor = binary.LittleEndian.Uint64(buf[8:])
	head.Seg = binary.LittleEndian.Uint32(buf[16:])
	head.Off = int64(binary.LittleEndian.Uint64(buf[20:]))
	nl0 := int(binary.LittleEndian.Uint32(buf[28:]))
	off := 32
	var specs []sstSpec
	for i := 0; i < nl0; i++ {
		if off+4 > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		nameLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+nameLen > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		specs = append(specs, sstSpec{level: i, l0: true, name: string(buf[off : off+nameLen])})
		off += nameLen
	}
	if off+4 > len(buf) {
		return fmt.Errorf("logeng: manifest payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < n; i++ {
		if off+8 > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		level := int(binary.LittleEndian.Uint32(buf[off:]))
		nameLen := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if off+nameLen > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		specs = append(specs, sstSpec{level: level, name: string(buf[off : off+nameLen])})
		off += nameLen
	}
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	if workers > 1 && len(specs) > 1 {
		return e.loadRunsParallel(specs, workers)
	}
	for _, sp := range specs {
		run, err := openSSTable(e.Env.FS, e.Env.Arena, sp.name)
		if err != nil {
			return err
		}
		e.placeRun(sp, run)
		e.Rec.Records += run.count
		// Harvest pointers for validation once the value log is open.
		it := &sstIter{t: run, c: e.cache}
		for it.valid() {
			_, ent, err := it.entry()
			if err != nil {
				return err
			}
			if ent.Kind == lsm.KindFullPtr {
				ptr, ok := core.DecodeVlogPtr(ent.Payload)
				if !ok {
					return core.Corrupt(fmt.Errorf("logeng: %s carries malformed value-log pointer", run.name))
				}
				e.pendingPtrs = append(e.pendingPtrs, ptr)
			}
			it.next()
		}
	}
	e.Rec.Workers = 1
	return nil
}

func (e *Engine) placeRun(sp sstSpec, run *sstable) {
	if sp.l0 {
		for len(e.l0) <= sp.level {
			e.l0 = append(e.l0, nil)
		}
		e.l0[sp.level] = run
		return
	}
	for len(e.levels) <= sp.level {
		e.levels = append(e.levels, nil)
	}
	e.levels[sp.level] = run
}

// loadRunsParallel loads all manifest runs with the bloom filters rebuilt
// from the entry keys concurrently. File and device access stay on the owner
// goroutine: the owner bulk-reads each run's entry and offset regions into
// host buffers, workers harvest keys, rebuild the filters, and collect the
// value-log pointers for validation, and the owner installs the filter bits
// into allocator memory.
func (e *Engine) loadRunsParallel(specs []sstSpec, workers int) error {
	imgs := make([]*sstImage, len(specs))
	for i, sp := range specs {
		img, err := readSSTImage(e.Env.FS, sp)
		if err != nil {
			return err
		}
		imgs[i] = img
	}
	blooms := make([][]byte, len(specs))
	kks := make([]int, len(specs))
	ptrs := make([][]core.VlogPtr, len(specs))
	err := core.ParallelChunks(workers, len(specs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			bm, k, err := imgs[i].rebuildBloom()
			if err != nil {
				return err
			}
			blooms[i], kks[i] = bm, k
			ps, err := imgs[i].harvestPtrs()
			if err != nil {
				return err
			}
			ptrs[i] = ps
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, img := range imgs {
		bm := blooms[i]
		ptr, err := e.Env.Arena.Alloc(len(bm)-8, pmalloc.TagIndex)
		if err != nil {
			return err
		}
		e.Env.Arena.Device().Write(int64(ptr), bm[8:])
		e.placeRun(specs[i], &sstable{
			name:       img.spec.name,
			f:          img.f,
			count:      img.count,
			offsetsPos: img.offsetsPos,
			bloomPtr:   ptr,
			bloomWords: uint64((len(bm) - 8) / 8),
			bloomK:     kks[i],
			size:       img.size,
		})
		e.Rec.Records += img.count
		e.pendingPtrs = append(e.pendingPtrs, ptrs[i]...)
	}
	e.Rec.Workers = workers
	return nil
}

// removeOrphans deletes SSTable files not referenced by the manifest
// (leftovers from a flush or compaction interrupted by the crash).
func (e *Engine) removeOrphans() {
	ref := make(map[string]bool)
	for _, run := range e.l0 {
		if run != nil {
			ref[run.name] = true
		}
	}
	for _, run := range e.levels {
		if run != nil {
			ref[run.name] = true
		}
	}
	for _, name := range e.Env.FS.List() {
		if len(name) >= 4 && name[:4] == "sst-" && !ref[name] {
			e.Env.FS.Remove(name)
		}
	}
}

// Footprint reports storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	e.mu.Lock()
	defer e.mu.Unlock()
	u := e.Env.Arena.Usage()
	var sst int64
	for _, run := range e.l0 {
		if run != nil {
			sst += run.size
		}
	}
	for _, run := range e.levels {
		if run != nil {
			sst += run.size
		}
	}
	if e.vl != nil {
		sst += e.vl.Bytes()
	}
	return core.Footprint{
		Table:      sst + u[pmalloc.TagTable],
		Index:      u[pmalloc.TagIndex],
		Log:        e.wal.SizeBytes(),
		Checkpoint: 0,
		Other:      e.cache.bytes(),
	}
}
