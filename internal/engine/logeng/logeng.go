// Package logeng implements the log-structured updates engine (Log, §3.3),
// modelled on LevelDB: changes are batched in a MemTable (with a WAL on the
// filesystem for durability) and periodically flushed as immutable SSTables
// organized in a leveled LSM tree with bloom filters and a compaction
// process that bounds read amplification. Reads reconstruct tuples by
// coalescing entries spread across the MemTable and the runs.
package logeng

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"nstore/internal/btree"
	"nstore/internal/core"
	"nstore/internal/engine/lsm"
	"nstore/internal/mvcc"
	"nstore/internal/pmalloc"
)

const (
	walFile = "log.wal"
	// The manifest alternates between two slot files so the newest valid
	// manifest is never the one being overwritten: a crash mid-write
	// (including a torn fsync) invalidates at most the in-progress slot and
	// recovery falls back to the previous generation, whose SSTables are
	// only removed after the next generation is durable. This replaces a
	// tmp-file + rename swap, which is not crash-atomic on pmfs.
	manifestSlotA = "log.manifest.0"
	manifestSlotB = "log.manifest.1"

	manifestMagic   = 0x4e534d414e463031 // "NSMANF01"
	manifestHdrSize = 32                 // magic, gen, payload len (u64) + payload crc (u32) + pad
)

// manCRC is the checksum polynomial for manifest slot validation.
var manCRC = crc32.MakeTable(crc32.Castagnoli)

// Engine is the log-structured updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts  core.Options
	cache *blockCache

	mem      *btree.Tree // packed tree key -> memtable entry chunk
	memCount int
	second   [][]*btree.Tree // volatile secondary indexes

	wal    *core.FsWAL
	levels []*sstable // levels[i] holds one run, ~k^i MemTables big
	seq    uint64
	manGen uint64 // manifest generation (newest valid slot wins)
	// walFloor is the highest TxnID fully contained in the SSTables; WAL
	// records at or below it are stale debris from reused extents.
	walFloor uint64

	walMark  int
	undo     []memUndo
	secUndo  []secUndo
	txnFrees []pmalloc.Ptr // superseded chunks, freed at commit

	compactions int
}

type memUndo struct {
	key    uint64
	oldPtr uint64 // 0 = key absent before
	newPtr uint64
}

type secUndo struct {
	table, idx int
	composite  uint64
	pk         uint64
	added      bool // true: entry was added (undo = delete)
}

// New creates a fresh Log engine.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	wal, err := core.NewFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
	if err != nil {
		return nil, err
	}
	if err := wal.UseArenaBuffer(env.Arena); err != nil {
		return nil, err
	}
	e.wal = wal
	e.cache = newBlockCache(env.Arena, 0)
	e.buildVolatile()
	if err := e.writeManifest(); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) buildVolatile() {
	e.mem = btree.New(e.Env.Arena, e.opts.BTreeNodeSize)
	e.second = nil
	for _, tm := range e.Tables {
		var secs []*btree.Tree
		for range tm.Schema.Secondary {
			secs = append(secs, btree.New(e.Env.Arena, e.opts.BTreeNodeSize))
		}
		e.second = append(e.second, secs)
	}
}

// Open recovers a Log engine: reopen the SSTables from the manifest,
// rebuild the MemTable from the WAL, remove orphaned runs from interrupted
// compactions, and rebuild the secondary indexes (§3.3).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	e.cache = newBlockCache(env.Arena, 0)
	e.buildVolatile()

	if err := e.loadManifest(); err != nil {
		return nil, err
	}
	e.removeOrphans()

	wal, err := core.OpenFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
	if err != nil {
		wal, err = core.NewFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
		if err != nil {
			return nil, err
		}
	}
	e.wal = wal
	maxTxn, err := e.replayWAL()
	if err != nil {
		return nil, err
	}
	e.TxnID = maxTxn
	if e.walFloor > e.TxnID {
		e.TxnID = e.walFloor
	}
	if err := e.rebuildSecondaries(); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) replayWAL() (uint64, error) {
	return e.wal.Replay(e.walFloor, func(r core.WalRecord) error {
		e.Rec.Records++
		tk := core.TreePrimary(r.Table, r.Key)
		var ent lsm.Entry
		switch r.Type {
		case core.WalInsert:
			ent = lsm.Entry{Kind: lsm.KindFull, Payload: r.After}
		case core.WalUpdate:
			ent = lsm.Entry{Kind: lsm.KindDelta, Payload: r.After}
		case core.WalDelete:
			ent = lsm.Entry{Kind: lsm.KindTomb}
		default:
			return nil
		}
		oldPtr, _, err := e.putMem(e.Tables[r.Table].Schema, tk, ent)
		if err != nil {
			return err
		}
		if oldPtr != 0 {
			e.Env.Arena.Free(oldPtr)
		}
		return nil
	})
}

func (e *Engine) rebuildSecondaries() error {
	for _, tm := range e.Tables {
		if len(tm.Schema.Secondary) == 0 {
			continue
		}
		err := e.ScanRange(tm.Schema.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			for j, ix := range tm.Schema.Secondary {
				e.second[tm.ID][j].Put(core.SecComposite(ix.SecKey(row), pk), pk)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// MemTable entry chunks: kind u8, len u32, payload.

func (e *Engine) writeEntryChunk(ent lsm.Entry) (pmalloc.Ptr, error) {
	p, err := e.Env.Arena.Alloc(5+len(ent.Payload), pmalloc.TagTable)
	if err != nil {
		// Table-arena exhaustion is reachable from normal traffic: surface
		// it so the transaction can abort cleanly instead of panicking.
		return 0, err
	}
	dev := e.Env.Dev
	dev.WriteU8(int64(p), ent.Kind)
	dev.WriteU32(int64(p)+1, uint32(len(ent.Payload)))
	dev.Write(int64(p)+5, ent.Payload)
	return p, nil
}

func (e *Engine) readEntryChunk(p uint64) lsm.Entry {
	dev := e.Env.Dev
	kind := dev.ReadU8(int64(p))
	n := int(dev.ReadU32(int64(p) + 1))
	payload := make([]byte, n)
	dev.Read(int64(p)+5, payload)
	return lsm.Entry{Kind: kind, Payload: payload}
}

// putMem merges ent over any existing memtable entry for tk and installs
// the merged chunk. The superseded chunk is returned for deferred freeing.
func (e *Engine) putMem(s *core.Schema, tk uint64, ent lsm.Entry) (oldPtr, newPtr uint64, err error) {
	if old, ok := e.mem.Get(tk); ok {
		merged := lsm.Merge(s, ent, e.readEntryChunk(old))
		np, err := e.writeEntryChunk(merged)
		if err != nil {
			return 0, 0, err
		}
		e.mem.Put(tk, np)
		return old, np, nil
	}
	np, err := e.writeEntryChunk(ent)
	if err != nil {
		return 0, 0, err
	}
	e.mem.Put(tk, np)
	e.memCount++
	return 0, np, nil
}

// Name returns "log".
func (e *Engine) Name() string { return "log" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.walMark = e.wal.Mark()
	e.undo = e.undo[:0]
	e.secUndo = e.secUndo[:0]
	e.txnFrees = e.txnFrees[:0]
	return nil
}

// Commit group-commits the WAL and flushes the MemTable when full.
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	err := e.wal.TxnCommitted(e.TxnID)
	stop()
	if err != nil {
		// The commit record never became durable; the txn's memtable and
		// index changes are still undoable. Roll back and end the txn so
		// the caller can Begin again and retry.
		if rerr := e.rollback(); rerr != nil {
			return core.Corrupt(errors.Join(err, rerr))
		}
		return err
	}
	e.MV.CommitStaged(e.TxnID, e.wal.PendingTxns() == 0)
	for _, p := range e.txnFrees {
		e.Env.Arena.Free(p)
	}
	e.txnFrees = e.txnFrees[:0]
	if e.memCount >= e.opts.MemTableCap {
		if err := e.flushMemTable(); err != nil {
			// The transaction committed; only the memtable spill failed.
			// The memtable stays over capacity and the next commit retries
			// the flush. End the txn before surfacing.
			_ = e.EndTx()
			return err
		}
	}
	return e.EndTx()
}

// Abort rolls back memtable and secondary-index changes.
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	return e.rollback()
}

// rollback undoes the running transaction's memtable and secondary-index
// changes, drops its buffered WAL records, and ends the transaction. Shared
// by Abort and the commit-failure path, so every exit leaves the engine
// ready for Begin.
func (e *Engine) rollback() error {
	for i := len(e.undo) - 1; i >= 0; i-- {
		u := e.undo[i]
		if u.oldPtr != 0 {
			e.mem.Put(u.key, u.oldPtr)
		} else {
			e.mem.Delete(u.key)
			e.memCount--
		}
		e.Env.Arena.Free(u.newPtr)
	}
	for i := len(e.secUndo) - 1; i >= 0; i-- {
		u := e.secUndo[i]
		if u.added {
			e.second[u.table][u.idx].Delete(u.composite)
		} else {
			e.second[u.table][u.idx].Put(u.composite, u.pk)
		}
	}
	e.wal.DropTail(e.walMark)
	e.MV.DropStaged()
	e.txnFrees = e.txnFrees[:0]
	return e.EndTx()
}

func (e *Engine) secAdd(tm *core.TableMeta, j int, sec uint32, pk uint64) {
	c := core.SecComposite(sec, pk)
	e.second[tm.ID][j].Put(c, pk)
	e.secUndo = append(e.secUndo, secUndo{table: tm.ID, idx: j, composite: c, pk: pk, added: true})
}

func (e *Engine) secDel(tm *core.TableMeta, j int, sec uint32, pk uint64) {
	c := core.SecComposite(sec, pk)
	e.second[tm.ID][j].Delete(c)
	e.secUndo = append(e.secUndo, secUndo{table: tm.ID, idx: j, composite: c, pk: pk, added: false})
}

// applyMem routes one logical change through the memtable with undo
// tracking.
func (e *Engine) applyMem(tm *core.TableMeta, key uint64, ent lsm.Entry) error {
	tk := core.TreePrimary(tm.ID, key)
	oldPtr, newPtr, err := e.putMem(tm.Schema, tk, ent)
	if err != nil {
		return err
	}
	e.undo = append(e.undo, memUndo{key: tk, oldPtr: oldPtr, newPtr: newPtr})
	if oldPtr != 0 {
		e.txnFrees = append(e.txnFrees, oldPtr)
	}
	return nil
}

// Insert adds a tuple.
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	_, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if exists {
		return core.ErrKeyExists
	}
	img := core.EncodeRow(tm.Schema, row)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalInsert, TxnID: e.TxnID,
		Table: tm.ID, Key: key, After: img})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindFull, Payload: img})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	for j, ix := range tm.Schema.Secondary {
		e.secAdd(tm, j, ix.SecKey(row), key)
	}
	stopIdx()
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update records the updated fields as a delta entry.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	beforeUpd := core.Update{Cols: upd.Cols, Vals: make([]core.Value, len(upd.Cols))}
	for j, ci := range upd.Cols {
		beforeUpd.Vals[j] = old[ci]
	}
	delta := core.EncodeDelta(tm.Schema, upd)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalUpdate, TxnID: e.TxnID,
		Table: tm.ID, Key: key,
		Before: core.EncodeDelta(tm.Schema, beforeUpd), After: delta})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindDelta, Payload: delta})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			e.secDel(tm, j, ok, key)
			e.secAdd(tm, j, nk, key)
		}
	}
	stopIdx()
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete marks the tuple with a tombstone; space is reclaimed during
// compaction (§3.3).
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.Get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalDelete, TxnID: e.TxnID,
		Table: tm.ID, Key: key, Before: core.EncodeRow(tm.Schema, old)})
	stop()
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.applyMem(tm, key, lsm.Entry{Kind: lsm.KindTomb})
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	for j, ix := range tm.Schema.Secondary {
		e.secDel(tm, j, ix.SecKey(old), key)
	}
	stopIdx()
	e.MV.StageDelete(table, key)
	return nil
}

// Get reconstructs a tuple by coalescing entries from the MemTable and the
// LSM runs, newest first, stopping at the first full image or tombstone.
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	tk := core.TreePrimary(tm.ID, key)
	var acc lsm.Entry
	have := false

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if p, ok := e.mem.Get(tk); ok {
		acc = e.readEntryChunk(p)
		have = true
	}
	stopSt()
	if !have || acc.Kind == lsm.KindDelta {
		stopIdx := e.Bd.Timer(&e.Bd.Index)
		defer stopIdx()
		for _, run := range e.levels {
			if run == nil {
				continue
			}
			ent, ok, err := run.get(e.cache, e.Env.Dev, tk)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			if have {
				acc = lsm.Merge(tm.Schema, acc, ent)
			} else {
				acc = ent
				have = true
			}
			if acc.Kind != lsm.KindDelta {
				break
			}
		}
	}
	if !have || acc.Kind != lsm.KindFull {
		return nil, false, nil
	}
	row, err := core.DecodeRow(tm.Schema, acc.Payload)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("logeng: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange merges the MemTable and every run over the key range,
// coalescing per key.
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	if to > core.TreePK(^uint64(0)) {
		hi = core.TreePrimary(tm.ID, core.TreePK(^uint64(0)))
	}

	// MemTable slice of the range (memtables are small).
	type kv struct {
		k uint64
		e lsm.Entry
	}
	var memRange []kv
	e.mem.Iter(lo, func(k, p uint64) bool {
		if k >= hi {
			return false
		}
		memRange = append(memRange, kv{k, e.readEntryChunk(p)})
		return true
	})
	memIdx := 0

	var iters []*sstIter
	for _, run := range e.levels {
		if run == nil {
			continue
		}
		pos, err := run.lowerBound(e.cache, lo)
		if err != nil {
			return err
		}
		iters = append(iters, &sstIter{t: run, c: e.cache, pos: pos})
	}

	for {
		// Find the smallest next key across sources.
		minKey := ^uint64(0)
		if memIdx < len(memRange) {
			minKey = memRange[memIdx].k
		}
		for _, it := range iters {
			if !it.valid() {
				continue
			}
			k, _, err := it.entry()
			if err != nil {
				return err
			}
			if k < minKey {
				minKey = k
			}
		}
		if minKey >= hi {
			return nil
		}
		// Gather entries for minKey, newest source first.
		var entries []lsm.Entry
		if memIdx < len(memRange) && memRange[memIdx].k == minKey {
			entries = append(entries, memRange[memIdx].e)
			memIdx++
		}
		for _, it := range iters {
			if !it.valid() {
				continue
			}
			k, ent, err := it.entry()
			if err != nil {
				return err
			}
			if k == minKey {
				entries = append(entries, ent)
				it.next()
			}
		}
		row, exists, _ := lsm.Coalesce(tm.Schema, entries)
		if exists {
			if !fn(core.TreePK(minKey), row) {
				return nil
			}
		}
	}
}

// Flush forces the pending group commit (not a MemTable flush).
func (e *Engine) Flush() error {
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := e.wal.Flush(); err != nil {
		return err
	}
	e.MV.PublishDurable()
	return nil
}

// FlushMemTable forces the MemTable to an SSTable (test/bench hook).
func (e *Engine) FlushMemTable() error { return e.flushMemTable() }

// WalStats exposes the WAL's cumulative counters (core.WalStatser).
func (e *Engine) WalStats() core.WalStats { return e.wal.Stats() }

// Compactions returns the number of merge compactions performed.
func (e *Engine) Compactions() int { return e.compactions }

// flushMemTable writes the MemTable as a run and cascades merges so each
// level holds one run, each deeper run larger than its parent (§3.3).
func (e *Engine) flushMemTable() error {
	if e.memCount == 0 {
		return nil
	}
	stop := e.Bd.Timer(&e.Bd.Storage)
	defer stop()
	if err := e.wal.Flush(); err != nil {
		return err
	}

	e.seq++
	name := fmt.Sprintf("sst-%06d", e.seq)
	w, err := newSSTWriter(e.Env.FS, name)
	if err != nil {
		return err
	}
	var freeList []uint64
	e.mem.Iter(0, func(k, p uint64) bool {
		w.add(k, e.readEntryChunk(p))
		freeList = append(freeList, p)
		return true
	})
	if err := w.finish(); err != nil {
		return err
	}
	run, err := openSSTable(e.Env.FS, e.Env.Arena, name)
	if err != nil {
		return err
	}

	// Cascade: find the run's resting level and whether deeper data exists
	// (tombstones may only be dropped if nothing older remains below).
	rest := 0
	for rest < len(e.levels) && e.levels[rest] != nil {
		rest++
	}
	deeper := false
	for j := rest + 1; j < len(e.levels); j++ {
		if e.levels[j] != nil {
			deeper = true
		}
	}
	var obsolete []*sstable
	for i := 0; i < rest; i++ {
		// Tombstones may only be dropped on the final merge of the cascade,
		// and only when no deeper run could still hold the shadowed tuples.
		dropTombs := i == rest-1 && !deeper
		merged, err := e.mergeRuns(run, e.levels[i], dropTombs)
		if err != nil {
			return err
		}
		obsolete = append(obsolete, run, e.levels[i])
		e.levels[i] = nil
		run = merged
		e.compactions++
	}
	for len(e.levels) <= rest {
		e.levels = append(e.levels, nil)
	}
	e.levels[rest] = run

	// Durability order: manifest swap first, then WAL truncation, then
	// removal of superseded runs (orphans are cleaned at open).
	if err := e.writeManifest(); err != nil {
		return err
	}
	if err := e.wal.Truncate(); err != nil {
		return err
	}
	for _, o := range obsolete {
		o.release(e.Env.Arena, e.cache)
		e.Env.FS.Remove(o.name)
	}

	// Reset the MemTable.
	for _, p := range freeList {
		e.Env.Arena.Free(p)
	}
	e.mem.Release()
	e.mem = btree.New(e.Env.Arena, e.opts.BTreeNodeSize)
	e.memCount = 0
	return nil
}

// mergeRuns merges a newer run over an older one into a fresh SSTable.
func (e *Engine) mergeRuns(newer, older *sstable, dropTombs bool) (*sstable, error) {
	e.seq++
	name := fmt.Sprintf("sst-%06d", e.seq)
	w, err := newSSTWriter(e.Env.FS, name)
	if err != nil {
		return nil, err
	}
	a := &sstIter{t: newer, c: e.cache}
	b := &sstIter{t: older, c: e.cache}
	emit := func(k uint64, ent lsm.Entry) {
		if dropTombs && ent.Kind == lsm.KindTomb {
			return
		}
		w.add(k, ent)
	}
	for a.valid() || b.valid() {
		switch {
		case !b.valid():
			k, ent, err := a.entry()
			if err != nil {
				return nil, err
			}
			emit(k, ent)
			a.next()
		case !a.valid():
			k, ent, err := b.entry()
			if err != nil {
				return nil, err
			}
			emit(k, ent)
			b.next()
		default:
			ka, ea, err := a.entry()
			if err != nil {
				return nil, err
			}
			kb, eb, err := b.entry()
			if err != nil {
				return nil, err
			}
			switch {
			case ka < kb:
				emit(ka, ea)
				a.next()
			case kb < ka:
				emit(kb, eb)
				b.next()
			default:
				// Schema for Merge: decode the table from the packed key.
				tm := e.Tables[core.TreeTable(ka)]
				emit(ka, lsm.Merge(tm.Schema, ea, eb))
				a.next()
				b.next()
			}
		}
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	return openSSTable(e.Env.FS, e.Env.Arena, name)
}

// Manifest payload: seq u64, txnFloor u64, count u32, then
// {level u32, nameLen u32, name}. The payload sits behind a slot header
// (magic, generation, length, CRC); the newest valid slot wins at open.

func (e *Engine) writeManifest() error {
	var buf []byte
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], e.seq)
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], e.TxnID)
	buf = append(buf, b8[:]...)
	var entries [][]byte
	for i, run := range e.levels {
		if run == nil {
			continue
		}
		var ent []byte
		var b4 [4]byte
		binary.LittleEndian.PutUint32(b4[:], uint32(i))
		ent = append(ent, b4[:]...)
		binary.LittleEndian.PutUint32(b4[:], uint32(len(run.name)))
		ent = append(ent, b4[:]...)
		ent = append(ent, run.name...)
		entries = append(entries, ent)
	}
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(entries)))
	buf = append(buf, b4[:]...)
	for _, ent := range entries {
		buf = append(buf, ent...)
	}

	gen := e.manGen + 1
	img := make([]byte, manifestHdrSize+len(buf))
	binary.LittleEndian.PutUint64(img[0:], manifestMagic)
	binary.LittleEndian.PutUint64(img[8:], gen)
	binary.LittleEndian.PutUint64(img[16:], uint64(len(buf)))
	binary.LittleEndian.PutUint32(img[24:], crc32.Checksum(buf, manCRC))
	copy(img[manifestHdrSize:], buf)

	// Generation parity picks the slot NOT holding the newest valid
	// manifest; manGen only advances on durable success, so a failed
	// attempt retries into the same (expendable) slot.
	slot := manifestSlotA
	if gen%2 == 1 {
		slot = manifestSlotB
	}
	f, err := e.Env.FS.OpenOrCreate(slot)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	e.manGen = gen
	e.walFloor = e.TxnID
	return nil
}

// readManifestSlot validates one slot file; ok is false for a missing,
// torn, or corrupt slot (all expected after a crash).
func (e *Engine) readManifestSlot(name string) (gen uint64, payload []byte, ok bool) {
	f, err := e.Env.FS.OpenFile(name)
	if err != nil {
		return 0, nil, false
	}
	size := f.Size()
	if size < manifestHdrSize {
		return 0, nil, false
	}
	img := make([]byte, size)
	if _, err := f.ReadAt(img, 0); err != nil {
		return 0, nil, false
	}
	if binary.LittleEndian.Uint64(img[0:]) != manifestMagic {
		return 0, nil, false
	}
	gen = binary.LittleEndian.Uint64(img[8:])
	plen := binary.LittleEndian.Uint64(img[16:])
	if plen > uint64(size-manifestHdrSize) {
		return 0, nil, false
	}
	payload = img[manifestHdrSize : manifestHdrSize+int(plen)]
	if crc32.Checksum(payload, manCRC) != binary.LittleEndian.Uint32(img[24:]) {
		return 0, nil, false
	}
	return gen, payload, true
}

// loadManifest restores state from the newest valid manifest slot. No
// valid slot means no MemTable flush ever completed (or the very first
// manifest write tore): the WAL still holds every committed transaction,
// so starting with empty levels is correct.
func (e *Engine) loadManifest() error {
	gen, buf, ok := e.readManifestSlot(manifestSlotA)
	if g2, b2, ok2 := e.readManifestSlot(manifestSlotB); ok2 && (!ok || g2 > gen) {
		gen, buf, ok = g2, b2, true
	}
	if !ok {
		return nil
	}
	e.manGen = gen
	if len(buf) < 20 {
		return fmt.Errorf("logeng: manifest payload truncated")
	}
	e.seq = binary.LittleEndian.Uint64(buf)
	e.walFloor = binary.LittleEndian.Uint64(buf[8:])
	n := int(binary.LittleEndian.Uint32(buf[16:]))
	off := 20
	var specs []sstSpec
	for i := 0; i < n; i++ {
		if off+8 > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		level := int(binary.LittleEndian.Uint32(buf[off:]))
		nameLen := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if off+nameLen > len(buf) {
			return fmt.Errorf("logeng: manifest payload truncated")
		}
		specs = append(specs, sstSpec{level: level, name: string(buf[off : off+nameLen])})
		off += nameLen
	}
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	if workers > 1 && len(specs) > 1 {
		return e.loadRunsParallel(specs, workers)
	}
	for _, sp := range specs {
		run, err := openSSTable(e.Env.FS, e.Env.Arena, sp.name)
		if err != nil {
			return err
		}
		e.placeRun(sp.level, run)
		e.Rec.Records += run.count
	}
	e.Rec.Workers = 1
	return nil
}

func (e *Engine) placeRun(level int, run *sstable) {
	for len(e.levels) <= level {
		e.levels = append(e.levels, nil)
	}
	e.levels[level] = run
}

// loadRunsParallel loads all manifest runs with the bloom filters rebuilt
// from the entry keys concurrently. File and device access stay on the owner
// goroutine: the owner bulk-reads each run's entry and offset regions into
// host buffers, workers harvest keys and rebuild the filters from those
// buffers, and the owner installs the filter bits into allocator memory.
func (e *Engine) loadRunsParallel(specs []sstSpec, workers int) error {
	imgs := make([]*sstImage, len(specs))
	for i, sp := range specs {
		img, err := readSSTImage(e.Env.FS, sp)
		if err != nil {
			return err
		}
		imgs[i] = img
	}
	blooms := make([][]byte, len(specs))
	kks := make([]int, len(specs))
	err := core.ParallelChunks(workers, len(specs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			bm, k, err := imgs[i].rebuildBloom()
			if err != nil {
				return err
			}
			blooms[i], kks[i] = bm, k
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, img := range imgs {
		bm := blooms[i]
		ptr, err := e.Env.Arena.Alloc(len(bm)-8, pmalloc.TagIndex)
		if err != nil {
			return err
		}
		e.Env.Arena.Device().Write(int64(ptr), bm[8:])
		e.placeRun(specs[i].level, &sstable{
			name:       img.spec.name,
			f:          img.f,
			count:      img.count,
			offsetsPos: img.offsetsPos,
			bloomPtr:   ptr,
			bloomWords: uint64((len(bm) - 8) / 8),
			bloomK:     kks[i],
			size:       img.size,
		})
		e.Rec.Records += img.count
	}
	e.Rec.Workers = workers
	return nil
}

// removeOrphans deletes SSTable files not referenced by the manifest
// (leftovers from a compaction interrupted by the crash).
func (e *Engine) removeOrphans() {
	ref := make(map[string]bool)
	for _, run := range e.levels {
		if run != nil {
			ref[run.name] = true
		}
	}
	for _, name := range e.Env.FS.List() {
		if len(name) >= 4 && name[:4] == "sst-" && !ref[name] {
			e.Env.FS.Remove(name)
		}
	}
}

// Footprint reports storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	u := e.Env.Arena.Usage()
	var sst int64
	for _, run := range e.levels {
		if run != nil {
			sst += run.size
		}
	}
	return core.Footprint{
		Table:      sst + u[pmalloc.TagTable],
		Index:      u[pmalloc.TagIndex],
		Log:        e.wal.SizeBytes(),
		Checkpoint: 0,
		Other:      e.cache.bytes(),
	}
}
