package logeng

import (
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nstore/internal/core"
)

var vlogSeed = flag.Int64("vlogseed", 1, "base seed for the vlog GC property sequences")

func bigSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: 2048},
		},
	}}
}

// bigRow builds a row whose encoded size is controlled by n: n >= the
// separation threshold goes to the value log, smaller stays inline.
func bigRow(i int64, n int) []core.Value {
	pat := strings.Repeat(string(rune('a'+i%26)), n)
	return []core.Value{core.IntVal(i), core.IntVal(i * 2), core.StrVal(pat)}
}

func put1(t *testing.T, e *Engine, i int64, n int) {
	t.Helper()
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("t", uint64(i), bigRow(i, n)); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
}

// scanAll snapshots table t as key -> row for digest comparison.
func scanAll(t *testing.T, e *Engine) map[uint64][]core.Value {
	t.Helper()
	out := map[uint64][]core.Value{}
	err := e.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
		out[pk] = core.CloneRow(row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameState(sch *core.Schema, a, b map[uint64][]core.Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a), len(b))
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok {
			return fmt.Errorf("key %d missing", k)
		}
		if !core.RowsEqual(sch, ra, rb) {
			return fmt.Errorf("key %d differs", k)
		}
	}
	return nil
}

// TestVlogSeparationOracle runs one workload through a separating engine and
// a vlog-disabled oracle and requires byte-identical visible state at every
// checkpoint, including after a power cycle of both.
func TestVlogSeparationOracle(t *testing.T) {
	sch := bigSchema()
	opts := func(thresh int) core.Options {
		return core.Options{MemTableCap: 32, GroupCommitSize: 1, VlogThreshold: thresh}
	}
	envA := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	envB := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	ea, err := New(envA, sch, opts(256))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := New(envB, sch, opts(-1)) // oracle: separation disabled
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	model := map[uint64]bool{}
	both := func(fn func(e *Engine) error) {
		t.Helper()
		if err := fn(ea); err != nil {
			t.Fatal(err)
		}
		if err := fn(eb); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 400; step++ {
		k := int64(rng.Intn(120))
		switch op := rng.Intn(10); {
		case op < 5: // insert or full overwrite via delete+insert
			n := 16
			if rng.Intn(2) == 0 {
				n = 300 + rng.Intn(1200) // separated in engine A
			}
			row := bigRow(k, n)
			both(func(e *Engine) error {
				if err := e.Begin(); err != nil {
					return err
				}
				if model[uint64(k)] {
					if err := e.Delete("t", uint64(k)); err != nil {
						return err
					}
				}
				if err := e.Insert("t", uint64(k), row); err != nil {
					return err
				}
				return e.Commit()
			})
			model[uint64(k)] = true
		case op < 7: // delta update lands on top of separated full images
			if !model[uint64(k)] {
				continue
			}
			v := rng.Int63n(1 << 20)
			both(func(e *Engine) error {
				if err := e.Begin(); err != nil {
					return err
				}
				if err := e.Update("t", uint64(k), core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(v)}}); err != nil {
					return err
				}
				return e.Commit()
			})
		case op < 8:
			if !model[uint64(k)] {
				continue
			}
			both(func(e *Engine) error {
				if err := e.Begin(); err != nil {
					return err
				}
				if err := e.Delete("t", uint64(k)); err != nil {
					return err
				}
				return e.Commit()
			})
			delete(model, uint64(k))
		case op < 9:
			both(func(e *Engine) error { return e.FlushMemTable() })
		default:
			if err := ea.GCVlog(); err != nil { // oracle has no log to GC
				t.Fatal(err)
			}
		}
		if step%100 == 99 {
			if err := sameState(sch[0], scanAll(t, ea), scanAll(t, eb)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if st := ea.FlushStats(); st.VlogBytes == 0 && st.VlogReclaimed == 0 {
		t.Fatal("workload never separated a value; oracle test is vacuous")
	}

	// Power-cycle both and compare again: recovery must converge to the
	// same state whether values live in SSTables or behind pointers.
	envA.Dev.Crash()
	envB.Dev.Crash()
	envA2, err := envA.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	envB2, err := envB.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	ea2, err := Open(envA2, sch, opts(256))
	if err != nil {
		t.Fatal(err)
	}
	eb2, err := Open(envB2, sch, opts(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sameState(sch[0], scanAll(t, ea2), scanAll(t, eb2)); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
}

// TestCommitSurfacesFlushFailure pins the satellite contract: when the flush
// pipeline fails AFTER the group-commit barrier, Commit surfaces the error
// but the acked transaction is durable — its WAL segment is retained until a
// successful install, so a crash before the retry loses nothing.
func TestCommitSurfacesFlushFailure(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	opts := core.Options{MemTableCap: 8, GroupCommitSize: 1, VlogThreshold: 256}
	e, err := New(env, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// The first flush will build "sst-000001"; occupying the name makes the
	// build stage fail deterministically (pmfs Create refuses to clobber).
	if _, err := env.FS.Create("sst-000001"); err != nil {
		t.Fatal(err)
	}
	var commitErr error
	for i := int64(1); i <= 8; i++ {
		if err := e.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := e.Insert("t", uint64(i), bigRow(i, 600)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			commitErr = err
		}
	}
	if commitErr == nil {
		t.Fatal("flush failure never surfaced through Commit")
	}
	if st := e.FlushStats(); st.Failures == 0 {
		t.Fatal("failure not counted in flush stats")
	}
	// The failed-flush rows are still readable (frozen memtable is live).
	for i := int64(1); i <= 8; i++ {
		if _, ok, err := e.Get("t", uint64(i)); !ok || err != nil {
			t.Fatalf("key %d unreadable after flush failure: %v", i, err)
		}
	}

	// Crash NOW, with the flush still failed: the WAL segment behind the
	// frozen memtable was never released, so every acked commit recovers.
	env.Dev.Crash()
	env2, err := env.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		r, ok, err := e2.Get("t", uint64(i))
		if err != nil || !ok || r[1].I != i*2 {
			t.Fatalf("acked commit %d lost across flush-failure crash: %v %v", i, ok, err)
		}
	}
}

// TestFlushFailureRetries is the non-crash half: after a failed build the
// frozen memtable is resubmitted by the next Commit and the pipeline
// completes.
func TestFlushFailureRetries(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	opts := core.Options{MemTableCap: 8, GroupCommitSize: 1, VlogThreshold: 256}
	e, err := New(env, bigSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.FS.Create("sst-000001"); err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := int64(1); i <= 9; i++ { // 9th commit retries the failed flush
		e.Begin()
		if err := e.Insert("t", uint64(i), bigRow(i, 600)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected at least one surfaced flush failure")
	}
	if err := e.FlushMemTable(); err != nil {
		t.Fatalf("retried flush still failing: %v", err)
	}
	e.mu.Lock()
	installed := len(e.l0) > 0 || func() bool {
		for _, r := range e.levels {
			if r != nil {
				return true
			}
		}
		return false
	}()
	pending := len(e.imm)
	e.mu.Unlock()
	if !installed || pending != 0 {
		t.Fatalf("retry did not install (installed=%v, %d frozen memtables pending)", installed, pending)
	}
	for i := int64(1); i <= 9; i++ {
		if _, ok, err := e.Get("t", uint64(i)); !ok || err != nil {
			t.Fatalf("key %d lost across flush retry: %v", i, err)
		}
	}
}

// TestCrashAfterPrepareBeforeInstall freezes the memtable (the prepare
// stage: WAL segment sealed, fresh memtable swapped in) and crashes before
// build/install ever run; the sealed segment must replay everything. The
// second variant also runs the build stage — SSTable written, values
// separated into the log — and crashes before the manifest install: the
// orphaned SSTable must be removed and the value-log head rolled back.
func TestCrashAfterPrepareBeforeInstall(t *testing.T) {
	for _, variant := range []string{"after-prepare", "after-build"} {
		t.Run(variant, func(t *testing.T) {
			env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
			opts := core.Options{MemTableCap: 1 << 30, GroupCommitSize: 1, VlogThreshold: 256}
			e, err := New(env, bigSchema(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(1); i <= 50; i++ {
				put1(t, e, i, 600)
			}
			e.mu.Lock()
			fz, err := e.freeze()
			if err == nil && variant == "after-build" {
				err = e.flushTask(fz).Build()
			}
			e.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}

			env.Dev.Crash()
			env2, err := env.ReopenVolatile()
			if err != nil {
				t.Fatal(err)
			}
			e2, err := Open(env2, bigSchema(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(1); i <= 50; i++ {
				r, ok, err := e2.Get("t", uint64(i))
				if err != nil || !ok || r[1].I != i*2 {
					t.Fatalf("key %d lost (%s crash): ok=%v err=%v", i, variant, ok, err)
				}
			}
			if variant == "after-build" {
				// The built-but-never-installed SSTable is an orphan; recovery
				// must have deleted it (the manifest references nothing).
				for _, name := range env2.FS.List() {
					if strings.HasPrefix(name, "sst-") {
						t.Fatalf("orphan %s survived recovery", name)
					}
				}
			}
		})
	}
}

// TestCloseMidFlush closes the engine while a background worker has queued
// flush/compaction work; run under -race this pins the drain ordering (Close
// must not hold the monitor while the worker needs it). Commits that were
// acked before Close must survive a reopen.
func TestCloseMidFlush(t *testing.T) {
	for round := 0; round < 4; round++ {
		env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
		opts := core.Options{MemTableCap: 16, GroupCommitSize: 1, VlogThreshold: 256, FlushWorkers: 1}
		e, err := New(env, bigSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var acked int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := int64(1); i <= 400; i++ {
				if err := e.Begin(); err != nil {
					return // engine closed under us
				}
				if err := e.Insert("t", uint64(i), bigRow(i, 400)); err != nil {
					_ = e.Abort()
					return
				}
				if err := e.Commit(); err != nil {
					// Pipeline error after the barrier: still durable, but
					// stop counting here to keep the check conservative.
					return
				}
				mu.Lock()
				acked = i
				mu.Unlock()
			}
		}()
		// Close races the writer mid-stream; vary the cut point per round.
		for {
			mu.Lock()
			n := acked
			mu.Unlock()
			if n >= int64(20+40*round) {
				break
			}
			select {
			case <-done:
			default:
				continue
			}
			break
		}
		if err := e.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		<-done
		mu.Lock()
		n := acked
		mu.Unlock()

		env.Dev.Crash()
		env2, err := env.ReopenVolatile()
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Open(env2, bigSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= n; i++ {
			if _, ok, err := e2.Get("t", uint64(i)); !ok || err != nil {
				t.Fatalf("round %d: acked key %d lost after Close (%v)", round, i, err)
			}
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Seeded GC property test with ddmin shrinking.

// vlogOp is one step of the randomized separation/GC workload.
type vlogOp struct {
	kind byte // 'p' put big, 's' put small, 'd' delete, 'f' flush, 'g' gc
	k    uint64
	n    int
}

func (o vlogOp) String() string {
	switch o.kind {
	case 'p':
		return fmt.Sprintf("PutBig(%d,%dB)", o.k, o.n)
	case 's':
		return fmt.Sprintf("PutSmall(%d)", o.k)
	case 'd':
		return fmt.Sprintf("Delete(%d)", o.k)
	case 'f':
		return "FlushMemTable()"
	default:
		return "GCVlog()"
	}
}

func genVlogOps(rng *rand.Rand, n int) []vlogOp {
	ops := make([]vlogOp, n)
	for i := range ops {
		k := uint64(rng.Intn(40))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops[i] = vlogOp{kind: 'p', k: k, n: 300 + rng.Intn(1200)}
		case 4, 5:
			ops[i] = vlogOp{kind: 's', k: k, n: 16}
		case 6:
			ops[i] = vlogOp{kind: 'd', k: k}
		case 7, 8:
			ops[i] = vlogOp{kind: 'f'}
		default:
			ops[i] = vlogOp{kind: 'g'}
		}
	}
	return ops
}

// runVlogProp replays one op sequence, checking after every GC pass that all
// live pointers resolve to the modeled values and the reclaimed counter is
// monotone, then power-cycles and requires digest equality with the model.
func runVlogProp(ops []vlogOp) error {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	sch := bigSchema()
	opts := core.Options{MemTableCap: 24, GroupCommitSize: 1, VlogThreshold: 256, VlogSegSize: 8 << 10}
	e, err := New(env, sch, opts)
	if err != nil {
		return err
	}
	model := map[uint64][]core.Value{}
	var lastReclaimed int64

	txn := func(fn func() error) error {
		if err := e.Begin(); err != nil {
			return err
		}
		if err := fn(); err != nil {
			_ = e.Abort()
			return err
		}
		return e.Commit()
	}
	checkModel := func(eng *Engine) error {
		n := 0
		var bad error
		err := eng.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			n++
			want, ok := model[pk]
			if !ok {
				bad = fmt.Errorf("phantom key %d", pk)
				return false
			}
			if !core.RowsEqual(sch[0], row, want) {
				bad = fmt.Errorf("key %d: wrong row", pk)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if bad != nil {
			return bad
		}
		if n != len(model) {
			return fmt.Errorf("scan saw %d rows, model has %d", n, len(model))
		}
		for k, want := range model {
			row, ok, err := eng.Get("t", k)
			if err != nil {
				return fmt.Errorf("key %d: %w (dangling value-log pointer?)", k, err)
			}
			if !ok || !core.RowsEqual(sch[0], row, want) {
				return fmt.Errorf("key %d: point read mismatch (ok=%v)", k, ok)
			}
		}
		return nil
	}

	for i, o := range ops {
		switch o.kind {
		case 'p', 's':
			row := bigRow(int64(o.k), o.n)
			err := txn(func() error {
				if _, exists := model[o.k]; exists {
					if err := e.Delete("t", o.k); err != nil {
						return err
					}
				}
				return e.Insert("t", o.k, row)
			})
			if err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			model[o.k] = row
		case 'd':
			if _, exists := model[o.k]; !exists {
				continue
			}
			if err := txn(func() error { return e.Delete("t", o.k) }); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			delete(model, o.k)
		case 'f':
			if err := e.FlushMemTable(); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
		case 'g':
			if err := e.GCVlog(); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			st := e.FlushStats()
			if st.VlogReclaimed < lastReclaimed {
				return fmt.Errorf("op %d: reclaimed regressed %d -> %d", i, lastReclaimed, st.VlogReclaimed)
			}
			lastReclaimed = st.VlogReclaimed
			if err := checkModel(e); err != nil {
				return fmt.Errorf("op %d after GC: %w", i, err)
			}
		}
	}
	if err := checkModel(e); err != nil {
		return fmt.Errorf("final: %w", err)
	}

	// Power-cycle epilogue: recovery must rebuild exactly the model, with
	// every surviving pointer resolving (condemned-but-not-yet-deleted
	// segments, restricted heads, repointed records — all of it).
	env.Dev.Crash()
	env2, err := env.ReopenVolatile()
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	e2, err := Open(env2, sch, opts)
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	if err := checkModel(e2); err != nil {
		return fmt.Errorf("post-recovery: %w", err)
	}
	return nil
}

// shrinkVlogOps greedily removes chunks of a failing sequence while the
// failure reproduces (ddmin-style).
func shrinkVlogOps(ops []vlogOp) []vlogOp {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(ops); {
			cand := append(append([]vlogOp(nil), ops[:lo]...), ops[lo+chunk:]...)
			if runVlogProp(cand) != nil {
				ops = cand
			} else {
				lo += chunk
			}
		}
	}
	return ops
}

// TestVlogGCProperty drives seeded separation/GC sequences; a failure is
// shrunk to a minimal reproduction before reporting.
func TestVlogGCProperty(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 3
	}
	for s := int64(0); s < int64(n); s++ {
		seed := *vlogSeed + s
		rng := rand.New(rand.NewSource(seed))
		ops := genVlogOps(rng, 200)
		if err := runVlogProp(ops); err != nil {
			min := shrinkVlogOps(ops)
			t.Fatalf("seed %d: %v\nminimal reproduction (%d ops): %v\nreplay: go test -run TestVlogGCProperty -vlogseed=%d",
				seed, err, len(min), min, seed)
		}
	}
}
