package logeng

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "log",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			opts.MemTableCap = 64 // force flushes and compactions during the battery
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			opts.MemTableCap = 64
			return Open(env, schemas, opts)
		},
		Volatile: true,
	})
}

func simpleSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: 100},
		},
	}}
}

func row(i int64) []core.Value {
	return []core.Value{core.IntVal(i), core.IntVal(i * 2), core.StrVal("payload")}
}

func TestFlushAndCompaction(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	e, err := New(env, simpleSchema(), core.Options{MemTableCap: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 500; i++ {
		e.Begin()
		if err := e.Insert("t", uint64(i), row(i)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	if e.Compactions() == 0 {
		t.Error("no compactions after 10 memtable flushes")
	}
	occupied := 0
	for _, run := range e.levels {
		if run != nil {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("no SSTable runs")
	}
	// Every key readable, including those merged through multiple levels.
	for i := int64(1); i <= 500; i++ {
		r, ok, err := e.Get("t", uint64(i))
		if err != nil || !ok || r[1].I != i*2 {
			t.Fatalf("Get(%d) = %v,%v,%v", i, r, ok, err)
		}
	}
}

func TestDeltaCoalescingAcrossRuns(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	e, _ := New(env, simpleSchema(), core.Options{MemTableCap: 1 << 30})
	e.Begin()
	for i := int64(1); i <= 20; i++ {
		e.Insert("t", uint64(i), row(i))
	}
	e.Commit()
	if err := e.FlushMemTable(); err != nil {
		t.Fatal(err)
	}
	// Updates land in a separate run as deltas.
	e.Begin()
	for i := int64(1); i <= 20; i++ {
		e.Update("t", uint64(i), core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(i * 100)}})
	}
	e.Commit()
	if err := e.FlushMemTable(); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		r, ok, _ := e.Get("t", uint64(i))
		if !ok || r[1].I != i*100 || string(r[2].S) != "payload" {
			t.Fatalf("coalesced Get(%d) = %v,%v", i, r, ok)
		}
	}
}

func TestTombstonesDroppedAtDeepestLevel(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	e, _ := New(env, simpleSchema(), core.Options{MemTableCap: 1 << 30})
	e.Begin()
	for i := int64(1); i <= 100; i++ {
		e.Insert("t", uint64(i), row(i))
	}
	e.Commit()
	e.FlushMemTable()
	e.Begin()
	for i := int64(1); i <= 100; i++ {
		e.Delete("t", uint64(i))
	}
	e.Commit()
	e.FlushMemTable() // merges tombstones over inserts; nothing deeper
	var total int64
	for _, run := range e.levels {
		if run != nil {
			total += run.count
		}
	}
	if total != 0 {
		t.Errorf("deepest-level merge kept %d entries; tombstones not dropped", total)
	}
	for i := int64(1); i <= 100; i++ {
		if _, ok, _ := e.Get("t", uint64(i)); ok {
			t.Fatalf("deleted key %d visible", i)
		}
	}
}

func TestBloomFiltersSkipRuns(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	e, _ := New(env, simpleSchema(), core.Options{MemTableCap: 1 << 30})
	e.Begin()
	for i := int64(1); i <= 1000; i++ {
		e.Insert("t", uint64(i*2), row(i))
	}
	e.Commit()
	e.FlushMemTable()
	run := e.levels[0]
	if run == nil {
		t.Fatal("no run at level 0")
	}
	hits := 0
	for i := uint64(1); i <= 1000; i++ {
		if run.mayContain(env.Dev, core.TreePrimary(0, i*2-1)) { // absent keys
			hits++
		}
	}
	if hits > 50 {
		t.Errorf("bloom filter passed %d/1000 absent keys", hits)
	}
	for i := uint64(1); i <= 1000; i++ {
		if !run.mayContain(env.Dev, core.TreePrimary(0, i*2)) {
			t.Fatal("bloom false negative")
		}
	}
}

func TestRecoveryAfterCompactionCrash(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	opts := core.Options{MemTableCap: 40, GroupCommitSize: 4}
	e, _ := New(env, simpleSchema(), opts)
	for i := int64(1); i <= 300; i++ {
		e.Begin()
		e.Insert("t", uint64(i), row(i))
		e.Commit()
	}
	e.Flush()
	env.Dev.Crash()
	env2, err := env.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, simpleSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 300; i++ {
		if _, ok, _ := e2.Get("t", uint64(i)); !ok {
			t.Fatalf("key %d lost across flush/compaction crash", i)
		}
	}
}

func confFactory() enginetest.Factory {
	return enginetest.Factory{
		Name: "log",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
		Volatile: true,
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, confFactory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, confFactory(), 200)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, confFactory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, confFactory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, confFactory(), 200)
}
