package logeng

import (
	"encoding/binary"
	"fmt"

	"nstore/internal/bloom"
	"nstore/internal/core"
	"nstore/internal/engine/lsm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// SSTable file layout (§3.3):
//
//	entries:  {key u64, kind u8, len u32, payload} ... sorted by key
//	offsets:  count x u64 entry offsets (the per-SSTable index)
//	bloom:    marshalled bloom filter
//	footer:   offsetsPos u64, count u64, bloomPos u64, bloomLen u64, magic
const (
	sstMagic   = 0x5353544142312121
	footerSize = 40
	blockSize  = 4096
)

// blockCache is a small user-space cache of SSTable blocks kept in
// (volatile) allocator memory, standing in for LevelDB's block cache. It
// avoids a VFS crossing per binary-search probe while keeping the traffic
// visible to the NVM perf counters.
type blockCache struct {
	arena *pmalloc.Arena
	cap   int
	m     map[blockKey]*blockEnt
	tick  uint64
}

type blockKey struct {
	file string
	idx  int64
}

type blockEnt struct {
	ptr  pmalloc.Ptr
	n    int // valid bytes
	used uint64
}

func newBlockCache(arena *pmalloc.Arena, capBlocks int) *blockCache {
	if capBlocks <= 0 {
		capBlocks = 256
	}
	return &blockCache{arena: arena, cap: capBlocks, m: make(map[blockKey]*blockEnt)}
}

// read copies file bytes [off, off+len(p)) into p through the block cache.
func (c *blockCache) read(f *pmfs.File, name string, off int64, p []byte) error {
	dev := c.arena.Device()
	size := f.Size()
	for len(p) > 0 {
		idx := off / blockSize
		blockOff := idx * blockSize
		k := blockKey{name, idx}
		e, ok := c.m[k]
		if !ok {
			n := int(size - blockOff)
			if n > blockSize {
				n = blockSize
			}
			if n <= 0 {
				return fmt.Errorf("logeng: read past EOF of %s", name)
			}
			buf := make([]byte, n)
			if _, err := f.ReadAt(buf, blockOff); err != nil {
				return err
			}
			ptr, err := c.arena.Alloc(n, pmalloc.TagOther)
			if err != nil {
				return err
			}
			dev.Write(int64(ptr), buf)
			e = &blockEnt{ptr: ptr, n: n}
			c.evictIfFull()
			c.m[k] = e
		}
		c.tick++
		e.used = c.tick
		lo := int(off - blockOff)
		n := e.n - lo
		if n <= 0 {
			return fmt.Errorf("logeng: read past block end of %s", name)
		}
		if n > len(p) {
			n = len(p)
		}
		dev.Read(int64(e.ptr)+int64(lo), p[:n])
		p = p[n:]
		off += int64(n)
	}
	return nil
}

func (c *blockCache) evictIfFull() {
	if len(c.m) < c.cap {
		return
	}
	var victim blockKey
	var oldest uint64 = ^uint64(0)
	for k, e := range c.m {
		if e.used < oldest {
			oldest = e.used
			victim = k
		}
	}
	c.arena.Free(c.m[victim].ptr)
	delete(c.m, victim)
}

// drop removes all cached blocks of a deleted file.
func (c *blockCache) drop(name string) {
	for k, e := range c.m {
		if k.file == name {
			c.arena.Free(e.ptr)
			delete(c.m, k)
		}
	}
}

// bytes returns the cache's arena usage (Fig. 14 "other").
func (c *blockCache) bytes() int64 {
	var n int64
	for _, e := range c.m {
		n += int64(e.n)
	}
	return n
}

// sstable is an open, immutable sorted run.
type sstable struct {
	name  string
	f     *pmfs.File
	count int64

	offsetsPos int64
	// bloom filter resident in (volatile) allocator memory.
	bloomPtr   pmalloc.Ptr
	bloomWords uint64
	bloomK     int

	size int64
}

// sstWriter streams sorted entries into a new SSTable file.
type sstWriter struct {
	f       *pmfs.File
	name    string
	offsets []int64
	keys    []uint64
	buf     []byte
}

func newSSTWriter(fs *pmfs.FS, name string) (*sstWriter, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &sstWriter{f: f, name: name}, nil
}

func (w *sstWriter) add(key uint64, e lsm.Entry) {
	w.offsets = append(w.offsets, int64(len(w.buf)))
	w.keys = append(w.keys, key)
	var hdr [13]byte
	binary.LittleEndian.PutUint64(hdr[0:], key)
	hdr[8] = e.Kind
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(e.Payload)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, e.Payload...)
}

// finish writes entries, index, bloom filter, and footer, then fsyncs.
func (w *sstWriter) finish() error {
	offPos := int64(len(w.buf))
	var b8 [8]byte
	for _, o := range w.offsets {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		w.buf = append(w.buf, b8[:]...)
	}
	fl := bloom.New(len(w.keys), 10)
	for _, k := range w.keys {
		fl.Add(k)
	}
	bloomPos := int64(len(w.buf))
	bm := fl.Marshal()
	w.buf = append(w.buf, bm...)

	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(offPos))
	binary.LittleEndian.PutUint64(foot[8:], uint64(len(w.offsets)))
	binary.LittleEndian.PutUint64(foot[16:], uint64(bloomPos))
	binary.LittleEndian.PutUint64(foot[24:], uint64(len(bm)))
	binary.LittleEndian.PutUint64(foot[32:], sstMagic)
	w.buf = append(w.buf, foot[:]...)

	if _, err := w.f.WriteAt(w.buf, 0); err != nil {
		return err
	}
	return w.f.Sync()
}

// openSSTable opens a run and loads its bloom filter into allocator memory.
func openSSTable(fs *pmfs.FS, arena *pmalloc.Arena, name string) (*sstable, error) {
	f, err := fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size < footerSize {
		return nil, fmt.Errorf("logeng: %s too small", name)
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(foot[32:]) != sstMagic {
		return nil, fmt.Errorf("logeng: %s bad magic", name)
	}
	t := &sstable{
		name:       name,
		f:          f,
		offsetsPos: int64(binary.LittleEndian.Uint64(foot[0:])),
		count:      int64(binary.LittleEndian.Uint64(foot[8:])),
		size:       size,
	}
	bloomPos := int64(binary.LittleEndian.Uint64(foot[16:]))
	bloomLen := int(binary.LittleEndian.Uint64(foot[24:]))
	bm := make([]byte, bloomLen)
	if _, err := f.ReadAt(bm, bloomPos); err != nil {
		return nil, err
	}
	t.bloomK = int(binary.LittleEndian.Uint64(bm))
	t.bloomWords = uint64((bloomLen - 8) / 8)
	ptr, err := arena.Alloc(bloomLen-8, pmalloc.TagIndex)
	if err != nil {
		return nil, err
	}
	arena.Device().Write(int64(ptr), bm[8:])
	t.bloomPtr = ptr
	return t, nil
}

// sstSpec is a parsed manifest entry awaiting load. For L0 runs, level is
// the position in the (oldest-first) L0 list rather than an LSM level.
type sstSpec struct {
	level int
	l0    bool
	name  string
}

// sstImage is a run's host-memory image, read in bulk by the recovery owner
// goroutine: the decoded footer plus the raw offsets and entry regions —
// enough for a worker to harvest keys and rebuild the bloom filter without
// touching the file or the device.
type sstImage struct {
	spec       sstSpec
	f          *pmfs.File
	size       int64
	count      int64
	offsetsPos int64
	offsets    []byte // count x u64 entry offsets
	entries    []byte // [0, offsetsPos)
}

// readSSTImage opens a run and bulk-reads its metadata regions (owner
// goroutine only — pmfs and the device are single-owner on the data path).
func readSSTImage(fs *pmfs.FS, spec sstSpec) (*sstImage, error) {
	f, err := fs.OpenFile(spec.name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size < footerSize {
		return nil, fmt.Errorf("logeng: %s too small", spec.name)
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(foot[32:]) != sstMagic {
		return nil, fmt.Errorf("logeng: %s bad magic", spec.name)
	}
	img := &sstImage{
		spec:       spec,
		f:          f,
		size:       size,
		offsetsPos: int64(binary.LittleEndian.Uint64(foot[0:])),
		count:      int64(binary.LittleEndian.Uint64(foot[8:])),
	}
	if img.offsetsPos < 0 || img.count < 0 || img.offsetsPos+img.count*8 > size {
		return nil, fmt.Errorf("logeng: %s corrupt footer", spec.name)
	}
	img.offsets = make([]byte, img.count*8)
	if _, err := f.ReadAt(img.offsets, img.offsetsPos); err != nil {
		return nil, err
	}
	img.entries = make([]byte, img.offsetsPos)
	if _, err := f.ReadAt(img.entries, 0); err != nil {
		return nil, err
	}
	return img, nil
}

// rebuildBloom harvests the run's keys from its host-memory image and
// rebuilds the bloom filter. Pure host-memory work — safe on a worker
// goroutine. The writer sized the filter with the same constructor, so the
// rebuild is bit-identical with what finish() persisted.
func (img *sstImage) rebuildBloom() ([]byte, int, error) {
	keys := make([]uint64, img.count)
	for i := range keys {
		off := binary.LittleEndian.Uint64(img.offsets[i*8:])
		if off+8 > uint64(len(img.entries)) {
			return nil, 0, fmt.Errorf("logeng: %s corrupt entry offset", img.spec.name)
		}
		keys[i] = binary.LittleEndian.Uint64(img.entries[off:])
	}
	fl := bloom.New(len(keys), 10)
	for _, k := range keys {
		fl.Add(k)
	}
	return fl.Marshal(), fl.K(), nil
}

// harvestPtrs collects every value-log pointer the run carries, for
// recovery-time pointer validation. Pure host-memory work — safe on a
// worker goroutine.
func (img *sstImage) harvestPtrs() ([]core.VlogPtr, error) {
	var ptrs []core.VlogPtr
	for i := int64(0); i < img.count; i++ {
		off := binary.LittleEndian.Uint64(img.offsets[i*8:])
		if off+13 > uint64(len(img.entries)) {
			return nil, fmt.Errorf("logeng: %s corrupt entry offset", img.spec.name)
		}
		if img.entries[off+8] != lsm.KindFullPtr {
			continue
		}
		n := binary.LittleEndian.Uint32(img.entries[off+9:])
		if n != core.VlogPtrSize || off+13+uint64(n) > uint64(len(img.entries)) {
			return nil, fmt.Errorf("logeng: %s corrupt value-log pointer entry", img.spec.name)
		}
		ptr, ok := core.DecodeVlogPtr(img.entries[off+13 : off+13+uint64(n)])
		if !ok {
			return nil, fmt.Errorf("logeng: %s malformed value-log pointer", img.spec.name)
		}
		ptrs = append(ptrs, ptr)
	}
	return ptrs, nil
}

// mayContain probes the NVM-resident bloom filter.
func (t *sstable) mayContain(dev interface{ ReadU64(int64) uint64 }, key uint64) bool {
	if t.bloomWords == 0 {
		return true
	}
	ok := true
	bloom.Probes(key, t.bloomK, t.bloomWords*64, func(bit uint64) bool {
		w := dev.ReadU64(int64(t.bloomPtr) + int64(bit/64)*8)
		if w&(1<<(bit%64)) == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// entryAt reads entry i via the block cache.
func (t *sstable) entryAt(c *blockCache, i int64) (key uint64, e lsm.Entry, err error) {
	var ob [8]byte
	if err := c.read(t.f, t.name, t.offsetsPos+i*8, ob[:]); err != nil {
		return 0, e, err
	}
	off := int64(binary.LittleEndian.Uint64(ob[:]))
	var hdr [13]byte
	if err := c.read(t.f, t.name, off, hdr[:]); err != nil {
		return 0, e, err
	}
	key = binary.LittleEndian.Uint64(hdr[0:])
	e.Kind = hdr[8]
	n := int(binary.LittleEndian.Uint32(hdr[9:]))
	e.Payload = make([]byte, n)
	if n > 0 {
		if err := c.read(t.f, t.name, off+13, e.Payload); err != nil {
			return 0, e, err
		}
	}
	return key, e, nil
}

// get binary-searches the run for key (checking the bloom filter first).
func (t *sstable) get(c *blockCache, dev interface{ ReadU64(int64) uint64 }, key uint64) (lsm.Entry, bool, error) {
	if !t.mayContain(dev, key) {
		return lsm.Entry{}, false, nil
	}
	lo, hi := int64(0), t.count
	for lo < hi {
		mid := (lo + hi) / 2
		k, e, err := t.entryAt(c, mid)
		if err != nil {
			return lsm.Entry{}, false, err
		}
		switch {
		case k == key:
			return e, true, nil
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lsm.Entry{}, false, nil
}

// lowerBound returns the first entry index with key >= from.
func (t *sstable) lowerBound(c *blockCache, from uint64) (int64, error) {
	lo, hi := int64(0), t.count
	for lo < hi {
		mid := (lo + hi) / 2
		k, _, err := t.entryAt(c, mid)
		if err != nil {
			return 0, err
		}
		if k < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// release frees the bloom filter and drops cached blocks.
func (t *sstable) release(arena *pmalloc.Arena, c *blockCache) {
	if t.bloomPtr != 0 {
		arena.Free(t.bloomPtr)
		t.bloomPtr = 0
	}
	c.drop(t.name)
}

// sstIter iterates a run's entries in key order.
type sstIter struct {
	t   *sstable
	c   *blockCache
	pos int64
}

func (it *sstIter) valid() bool { return it.pos < it.t.count }

func (it *sstIter) entry() (uint64, lsm.Entry, error) {
	return it.t.entryAt(it.c, it.pos)
}

func (it *sstIter) next() { it.pos++ }
