package cow

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "cow",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
		Volatile: true,
	})
}

func TestNoRecoveryProcess(t *testing.T) {
	// The CoW engine must come back without replaying anything: the master
	// record itself is the consistent state.
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	schemas := []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}},
	}}
	e, err := New(env, schemas, core.Options{GroupCommitSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		e.Begin()
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i)})
		e.Commit()
	}
	e.Flush()
	// Uncommitted batch in the dirty directory.
	e.Begin()
	e.Insert("t", 101, []core.Value{core.IntVal(101)})
	env.Dev.EvictAll() // push dirty pages to NVM — they must still be invisible

	env.Dev.Crash()
	env2, err := env.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, schemas, core.Options{GroupCommitSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e2.Get("t", 101); ok {
		t.Error("dirty-directory change visible after crash")
	}
	for i := int64(1); i <= 100; i++ {
		if _, ok, _ := e2.Get("t", uint64(i)); !ok {
			t.Fatalf("committed key %d lost", i)
		}
	}
}

func TestWriteAmplification(t *testing.T) {
	// Updating one small field must still copy whole pages: bytes written
	// to the device should far exceed the logical update size (§3.2, §5.3).
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	schemas := []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "v", Type: core.TInt},
		},
	}}
	e, _ := New(env, schemas, core.Options{GroupCommitSize: 1})
	e.Begin()
	for i := int64(1); i <= 2000; i++ {
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.IntVal(0)})
	}
	e.Commit()
	e.Flush()

	before := env.Dev.Stats()
	for i := 0; i < 50; i++ {
		e.Begin()
		e.Update("t", uint64(i*40+1), core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(1)}})
		e.Commit()
	}
	e.Flush()
	d := env.Dev.Stats().Sub(before)
	logical := uint64(50 * 8)
	if d.BytesWritten < logical*50 {
		t.Errorf("write amplification too low: %d bytes written for %d logical", d.BytesWritten, logical)
	}
}

func confFactory() enginetest.Factory {
	return enginetest.Factory{
		Name: "cow",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
		Volatile: true,
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, confFactory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, confFactory(), 200)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, confFactory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, confFactory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, confFactory(), 200)
}
