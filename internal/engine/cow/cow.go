// Package cow implements the copy-on-write updates engine (CoW, §3.2),
// modelled on LMDB's shadow-paging B+tree over the filesystem interface.
// Tuples are stored fully inlined inside copy-on-write B+tree pages; a
// master record at a fixed file offset points at the current directory. The
// engine writes no WAL: committing a group of transactions fsyncs the dirty
// pages and atomically swings the master record, so there is no recovery
// process after a crash (§3.2).
//
// All tables and secondary indexes of the partition share one tree (packed
// key space, see core.TreePrimary), making multi-table transactions atomic
// under the single master record.
package cow

import (
	"fmt"

	"nstore/internal/core"
	"nstore/internal/cowbtree"
	"nstore/internal/mvcc"
)

const dbFile = "cow.db"

// Engine is the copy-on-write updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	pager *cowbtree.FilePager
	tree  *cowbtree.Tree

	sinceGroup int
}

// New creates a fresh CoW engine.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	pg, err := cowbtree.CreateFilePager(env.FS, dbFile, e.opts.CowPageSize)
	if err != nil {
		return nil, err
	}
	tr, err := cowbtree.Create(pg)
	if err != nil {
		return nil, err
	}
	e.pager, e.tree = pg, tr
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// Open re-attaches after a restart. There is no recovery process: the
// master record already points to a consistent current directory. The lost
// dirty directory's pages are reclaimed by a reachability sweep
// (asynchronous garbage collection in the paper; done inline here).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	pg, err := cowbtree.OpenFilePager(env.FS, dbFile, e.opts.CowPageSize)
	if err != nil {
		return nil, err
	}
	tr := cowbtree.Attach(pg)
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	used := make(map[uint64]bool)
	tr.ReachableParallel(workers, func(id uint64) { used[id] = true }, nil)
	pg.InitFree(used)
	e.Rec = core.RecoveryReport{Records: int64(len(used)), Workers: workers}
	e.pager, e.tree = pg, tr
	e.TxnID = tr.Meta() // highest persisted txn id rides in the master meta
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// Name returns "cow".
func (e *Engine) Name() string { return "cow" }

// Begin starts a transaction against the dirty directory.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.tree.Begin()
	return nil
}

// Commit keeps the transaction's changes in the dirty directory and, once
// the group is full, persists the batch by swinging the master record.
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.tree.SetMeta(e.TxnID)
	e.tree.Commit()
	e.sinceGroup++
	var err error
	if e.sinceGroup >= e.opts.GroupCommitSize {
		err = e.persist()
	}
	stop()
	if err != nil {
		// tree.Commit already folded the txn into the volatile batch, so
		// there is nothing left to roll back in place: only reopening
		// from the last durable master record restores a known state. The
		// transaction itself is over either way — end it so a post-heal
		// Begin on this instance does not trip over ErrInTxn.
		_ = e.EndTx()
		return core.Corrupt(err)
	}
	// sinceGroup == 0 means this commit persisted the batch: the whole
	// group is durable and its versions may publish to snapshot readers.
	e.MV.CommitStaged(e.TxnID, e.sinceGroup == 0)
	return e.EndTx()
}

func (e *Engine) persist() error {
	e.sinceGroup = 0
	return e.tree.Persist()
}

// Abort discards the transaction's pages from the dirty directory.
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	e.tree.Abort()
	e.MV.DropStaged()
	return e.EndTx()
}

// Insert adds a tuple: the full inline image goes into the tree.
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	_, exists := e.tree.Get(tk)
	stopIdx()
	if exists {
		return core.ErrKeyExists
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	err = e.tree.Put(tk, core.EncodeRow(tm.Schema, row))
	stopSt()
	if err != nil {
		return err
	}
	stopIdx = e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		if err := e.tree.Put(core.TreeSecondary(tm.ID, j, ix.SecKey(row), key), nil); err != nil {
			return err
		}
	}
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update copies the tuple, applies the changes to the copy, and stores the
// copy — the CoW engine "creates a new copy of the tuple even if a
// transaction only modifies a subset of the tuple's fields" (§3.2).
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	img, ok := e.tree.Get(tk)
	stopSt()
	if !ok {
		return core.ErrKeyNotFound
	}
	old, err := core.DecodeRow(tm.Schema, img)
	if err != nil {
		return err
	}
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	stopSt = e.Bd.Timer(&e.Bd.Storage)
	err = e.tree.Put(tk, core.EncodeRow(tm.Schema, now))
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			if _, err := e.tree.Delete(core.TreeSecondary(tm.ID, j, ok, key)); err != nil {
				return err
			}
			if err := e.tree.Put(core.TreeSecondary(tm.ID, j, nk, key), nil); err != nil {
				return err
			}
		}
	}
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete removes a tuple and its secondary entries.
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	img, ok := e.tree.Get(tk)
	if !ok {
		return core.ErrKeyNotFound
	}
	old, err := core.DecodeRow(tm.Schema, img)
	if err != nil {
		return err
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if _, err := e.tree.Delete(tk); err != nil {
		return err
	}
	stopSt()
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		if _, err := e.tree.Delete(core.TreeSecondary(tm.ID, j, ix.SecKey(old), key)); err != nil {
			return err
		}
	}
	e.MV.StageDelete(table, key)
	return nil
}

// Get fetches the master record's directory and looks the tuple up (§5.2's
// "for every transaction it fetches the master record and then looks up the
// tuple").
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	img, ok := e.tree.Get(core.TreePrimary(tm.ID, key))
	stopSt()
	if !ok {
		return nil, false, nil
	}
	row, err := core.DecodeRow(tm.Schema, img)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("cow: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.TreeSecRange(tm.ID, j, sec)
	e.tree.Iter(lo, func(k uint64, v []byte) bool {
		if k >= hi {
			return false
		}
		return fn(core.TreeSecPK(k))
	})
	return nil
}

// ScanRange iterates a table's tuples with pk in [from, to).
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	var derr error
	e.tree.Iter(lo, func(k uint64, v []byte) bool {
		if k >= hi {
			return false
		}
		row, err := core.DecodeRow(tm.Schema, v)
		if err != nil {
			derr = err
			return false
		}
		return fn(core.TreePK(k), row)
	})
	return derr
}

// Flush persists any batched transactions (the pending directory swap).
// A transient fsync failure is tagged retryable: Persist flushes nothing
// on failure and may simply be retried.
func (e *Engine) Flush() error {
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := core.ClassifyDurability(e.persist()); err != nil {
		return err
	}
	e.MV.PublishDurable()
	return nil
}

// Footprint reports storage usage: the tree file holds tuples and index
// structure together (Fig. 14 counts it as table storage).
func (e *Engine) Footprint() core.Footprint {
	return core.Footprint{Table: e.pager.FileBytes()}
}
