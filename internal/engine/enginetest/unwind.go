package enginetest

import (
	"testing"

	"nstore/internal/core"
)

// testCommitErrorUnwind is the regression for the txn-state leak: a persist
// failure inside Commit used to return without EndTx, so the engine stayed
// "in transaction" and the next Begin — the first thing a healed partition
// does — failed with ErrInTxn forever. Every engine must unwind its
// transaction state on every Commit error path.
func testCommitErrorUnwind(t *testing.T, f Factory) {
	env := newEnv(t)
	// GroupCommitSize 1 makes every commit hit the durability path, so the
	// injected sync failure lands inside Commit rather than a later Flush.
	opts := core.Options{GroupCommitSize: 1}
	e := mustEngine(t, f, env, opts)

	do(t, e.Begin())
	do(t, e.Insert("users", 1, userRow(1)))
	do(t, e.Commit())

	// One transient fsync failure for the next commit's durability work.
	env.FS.FailSyncs(0, 1)
	do(t, e.Begin())
	do(t, e.Insert("users", 2, userRow(2)))
	err := e.Commit()
	if err == nil {
		// NVM-aware engines bypass the filesystem entirely; their commit
		// has no fallible persist step to inject into here.
		t.Skipf("%s: commit does not touch the filesystem", f.Name)
	}

	// Whatever the failure was classified as, the transaction must be over:
	// the next Begin must not trip over leaked in-txn state.
	if berr := e.Begin(); berr != nil {
		t.Fatalf("Begin after failed commit: %v (commit err: %v)", berr, err)
	}
	do(t, e.Insert("users", 3, userRow(3)))
	do(t, e.Commit())
	do(t, e.Begin())
	if _, ok, gerr := e.Get("users", 3); gerr != nil || !ok {
		t.Fatalf("post-failure commit not visible: ok=%v err=%v", ok, gerr)
	}
	do(t, e.Commit())
}
