package enginetest

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/nvm"
)

// RunConcurrentRecoveryConformance drives the engine through `schedules`
// seeded crash-during-recovery cycles: a clean workload, a first (parallel)
// recovery that establishes the expected state digest, then a power cycle
// with a fault armed to fire *while the next recovery is running*, and a
// final recovery that must converge to the same digest. This is the
// conformance check for the parallel recovery pipeline — a recovery pass
// must be restartable at any point without changing the state it converges
// to. Pass schedules <= 0 for the default battery (200); -short runs 40.
func RunConcurrentRecoveryConformance(t *testing.T, f Factory, schedules int) {
	t.Helper()
	if schedules <= 0 {
		schedules = 200
	}
	if testing.Short() && schedules > 40 {
		schedules = 40
	}
	if err := CheckConcurrentRecoveryConformance(f, schedules, BaseSeed()); err != nil {
		t.Fatal(err)
	}
}

// CheckConcurrentRecoveryConformance is the error-returning core of
// RunConcurrentRecoveryConformance.
func CheckConcurrentRecoveryConformance(f Factory, schedules int, baseSeed int64) error {
	if schedules <= 0 {
		schedules = 200
	}
	fams := conformanceFamilies(f.Volatile)
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		// Family from the seed (not the loop index) so -seed=N replays the
		// same schedule.
		fam := fams[int(uint64(seed)%uint64(len(fams)))]
		if err := concurrentSchedule(f, fam, seed); err != nil {
			return fmt.Errorf("%s: schedule %d [%s, seed %d]: %w\nreplay: go test -run ConcurrentRecoveryConformance -seed=%d",
				f.Name, i, fam.name, seed, err, seed)
		}
	}
	return nil
}

// concurrentSchedule runs one cycle: workload → clean crash → control
// recovery (digest) → crash → recovery attempt with a fault armed to fire
// mid-recovery → crash → final recovery, which must match the control
// digest exactly.
func concurrentSchedule(f Factory, fam faultFamily, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	// Small capacities force MemTable flushes, LSM merges, and checkpoints
	// within a short workload, so recovery has real work to redo in
	// parallel; GroupCommitSize 1 keeps the committed model exact.
	opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128,
		GroupCommitSize: 1, CheckpointEvery: 40}
	schema := testSchema()
	e, err := f.New(env, schema, opts)
	if err != nil {
		return fmt.Errorf("New: %w", err)
	}

	committed := newCmodel()
	working := newCmodel()
	for step := 0; step < 60; step++ {
		if err := e.Begin(); err != nil {
			return fmt.Errorf("step %d: Begin: %w", step, err)
		}
		nops := 1 + rng.Intn(3)
		for o := 0; o < nops; o++ {
			if rng.Intn(4) == 3 {
				if err := itemOp(rng, e, working); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			} else if err := userOp(rng, e, working, step); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
		}
		if rng.Intn(8) == 0 {
			if err := e.Abort(); err != nil {
				return fmt.Errorf("step %d: Abort: %w", step, err)
			}
			working = committed.clone()
		} else {
			if err := e.Commit(); err != nil {
				return fmt.Errorf("step %d: Commit: %w", step, err)
			}
			committed = working.clone()
		}
	}
	if err := e.Flush(); err != nil {
		return fmt.Errorf("Flush: %w", err)
	}

	// Control pass: clean power cycle, recover, record the expected digest.
	// No transaction was in flight, so the committed model is unambiguous.
	env.Dev.Crash()
	env2, err := reopenEnv(f, env)
	if err != nil {
		return fmt.Errorf("control reopen: %w", err)
	}
	e2, err := f.Open(env2, schema, opts)
	if err != nil {
		return fmt.Errorf("control recovery: %w", err)
	}
	if err := checkState(e2, schema, committed); err != nil {
		return fmt.Errorf("control recovery state != committed model: %w", err)
	}
	digCtl, err := digestEngine(e2, schema)
	if err != nil {
		return fmt.Errorf("control digest: %w", err)
	}

	// Power-cycle again, then arm a fault timed to fire during the *next*
	// recovery's device traffic — the power cut lands mid-replay.
	env2.Dev.Crash()
	if fam.device != nil {
		p := *fam.device
		p.Seed = seed ^ 0x7ec0
		p.CrashAfterFences = 1 + rng.Intn(40)
		env2.Dev.InjectFaults(p)
	} else {
		sf := *fam.sync
		sf.Seed = seed ^ 0x7ec0
		sf.AfterSyncs = rng.Intn(10)
		env2.FS.InjectSyncFault(sf)
	}
	crashed, err := attemptRecovery(f, env2, schema, opts)
	if err != nil {
		return fmt.Errorf("mid-recovery attempt (crashed=%v): %w", crashed, err)
	}

	// Final pass: cut the power over whatever the interrupted recovery left
	// behind (Crash applies the plan's reorder/tear effects to un-fenced
	// write-back) and recover once more. It must converge to the control
	// state bit-for-bit.
	env2.Dev.Crash()
	env2.Dev.DisarmFail()
	env3, err := reopenEnv(f, env2)
	if err != nil {
		return fmt.Errorf("final reopen (crashed=%v): %w", crashed, err)
	}
	e3, err := f.Open(env3, schema, opts)
	if err != nil {
		return fmt.Errorf("final recovery (crashed=%v): %w", crashed, err)
	}
	if err := checkState(e3, schema, committed); err != nil {
		return fmt.Errorf("final state != committed model (crashed=%v): %w", crashed, err)
	}
	dig, err := digestEngine(e3, schema)
	if err != nil {
		return fmt.Errorf("final digest: %w", err)
	}
	if dig != digCtl {
		return fmt.Errorf("recovery after mid-recovery crash diverged: digest %x != control %x (crashed=%v)", dig, digCtl, crashed)
	}

	// The engine must be fully usable after the double recovery.
	if err := e3.Begin(); err != nil {
		return fmt.Errorf("post-recovery Begin: %w", err)
	}
	probe := uint64(1) << 40
	if err := e3.Insert("users", probe, userRow(int64(probe))); err != nil {
		return fmt.Errorf("post-recovery Insert: %w", err)
	}
	if err := e3.Commit(); err != nil {
		return fmt.Errorf("post-recovery Commit: %w", err)
	}
	if _, ok, err := e3.Get("users", probe); err != nil || !ok {
		return fmt.Errorf("post-recovery probe row missing (ok=%v, err=%v)", ok, err)
	}
	return nil
}

// attemptRecovery reopens the environment and runs the engine's recovery
// with the fault armed. A mid-recovery injected crash (panic or wrapped
// error) reports crashed=true; a clean completion reports crashed=false (the
// fault's trigger landed past the recovery's traffic); anything else is a
// genuine recovery failure.
func attemptRecovery(f Factory, env *core.Env, schema []*core.Schema, opts core.Options) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			rerr, ok := r.(error)
			if !ok || !errors.Is(rerr, nvm.ErrInjectedCrash) {
				panic(r)
			}
			crashed = true
			err = nil
		}
	}()
	env2, rerr := reopenEnv(f, env)
	if rerr != nil {
		if errors.Is(rerr, nvm.ErrInjectedCrash) {
			return true, nil
		}
		return false, rerr
	}
	if _, rerr := f.Open(env2, schema, opts); rerr != nil {
		if errors.Is(rerr, nvm.ErrInjectedCrash) {
			return true, nil
		}
		return false, rerr
	}
	return false, nil
}

// reopenEnv re-attaches the environment over the same device, volatile or
// NVM-aware per the factory.
func reopenEnv(f Factory, env *core.Env) (*core.Env, error) {
	if f.Volatile {
		return env.ReopenVolatile()
	}
	return env.Reopen()
}

// digestEngine canonically serializes the engine's visible state (primary
// scans of both workload tables) and hashes it.
func digestEngine(e core.Engine, schema []*core.Schema) ([32]byte, error) {
	h := sha256.New()
	var le [8]byte
	writeU64 := func(v uint64) { binary.LittleEndian.PutUint64(le[:], v); h.Write(le[:]) }
	for _, sch := range schema {
		if err := e.ScanRange(sch.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			writeU64(pk)
			for ci, col := range sch.Columns {
				if col.Type == core.TInt {
					writeU64(uint64(row[ci].I))
				} else {
					writeU64(uint64(len(row[ci].S)))
					h.Write(row[ci].S)
				}
			}
			return true
		}); err != nil {
			return [32]byte{}, err
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}
