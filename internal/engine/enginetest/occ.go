package enginetest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
)

// RunOCCConformance drives the engine through `schedules` seeded
// concurrent-writer workloads executed the OCC way: each transaction runs
// against a core.OccTxn (reads from a pinned snapshot, writes buffered),
// then validates its read set and applies at a serialized commit point —
// first committer wins, losers retry on core.ErrConflict. Every operation
// is an additive effect (balance increments and conserving transfers) or a
// worker-private sequence, so the committed end state is a pure function of
// the seed: the battery checks it against the model row by row and as a
// digest, which makes the result serializable-equivalent and — because the
// model depends only on the seed — identical across every engine kind. A
// crash + reopen epilogue asserts the whole history recovers. Pass
// schedules <= 0 for the default battery (200); -short runs 40. A failure
// names its seed; replay with
//
//	go test -run OCCConformance -seed=<reported seed>
func RunOCCConformance(t *testing.T, f Factory, schedules int) {
	t.Helper()
	if schedules <= 0 {
		schedules = 200
	}
	if testing.Short() && schedules > 40 {
		schedules = 40
	}
	if err := CheckOCCConformance(f, schedules, BaseSeed()); err != nil {
		t.Fatal(err)
	}
}

// CheckOCCConformance is the error-returning core of RunOCCConformance.
func CheckOCCConformance(f Factory, schedules int, baseSeed int64) error {
	if schedules <= 0 {
		schedules = 200
	}
	conflicts := 0
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		n, err := occSchedule(f, seed)
		if err != nil {
			return fmt.Errorf("%s: schedule %d [seed %d]: %w\nreplay: go test -run OCCConformance -seed=%d",
				f.Name, i, seed, err, seed)
		}
		conflicts += n
	}
	if schedules >= 20 && conflicts == 0 {
		return fmt.Errorf("%s: %d schedules produced zero OCC conflicts — the battery is not exercising concurrent validation",
			f.Name, schedules)
	}
	return nil
}

// occOp is one transaction of a worker's deterministic op stream.
type occOp struct {
	kind  byte   // 'i' increment, 't' transfer, 'p' private put, 'x' private delete
	a, b  uint64 // users keys ('i': a; 't': a -> b) or items key ('p'/'x': a)
	delta int64
	pause time.Duration // optimistic-phase stall, so workers interleave
}

// genOCCOps builds one worker's stream. Every effect is additive or
// worker-private, so the final state is independent of commit order — the
// serializable-equivalence oracle.
func genOCCOps(rng *rand.Rand, w, steps, sharedKeys int) []occOp {
	ops := make([]occOp, steps)
	nextPriv := uint64(1000 * (w + 1))
	var live []uint64
	for i := range ops {
		pause := time.Duration(rng.Intn(60)) * time.Microsecond
		switch r := rng.Intn(10); {
		case r < 5:
			ops[i] = occOp{kind: 'i', a: uint64(1 + rng.Intn(sharedKeys)), delta: 1 + rng.Int63n(5), pause: pause}
		case r < 8:
			a := uint64(1 + rng.Intn(sharedKeys))
			b := uint64(1 + rng.Intn(sharedKeys))
			for b == a {
				b = uint64(1 + rng.Intn(sharedKeys))
			}
			ops[i] = occOp{kind: 't', a: a, b: b, delta: 1 + rng.Int63n(10), pause: pause}
		case r < 9 && len(live) > 0:
			k := live[rng.Intn(len(live))]
			ops[i] = occOp{kind: 'x', a: k, pause: pause}
			for j, lk := range live {
				if lk == k {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		default:
			ops[i] = occOp{kind: 'p', a: nextPriv, delta: rng.Int63n(1 << 20), pause: pause}
			live = append(live, nextPriv)
			nextPriv++
		}
	}
	return ops
}

// occApplyModel folds one op into the expected end state.
func occApplyModel(users map[uint64]int64, items map[uint64]int64, o occOp) {
	switch o.kind {
	case 'i':
		users[o.a] += o.delta
	case 't':
		users[o.a] -= o.delta
		users[o.b] += o.delta
	case 'p':
		items[o.a] = o.delta
	case 'x':
		delete(items, o.a)
	}
}

// occRunTxn executes one op as an OCC transaction against the engine:
// optimistic phase on a pinned snapshot, then validate + apply under the
// commit mutex. Returns the number of conflict retries it absorbed.
func occRunTxn(e core.Engine, sr core.SnapshotReader, vp core.OccValidatorProvider,
	commitMu *sync.Mutex, schema []*core.Schema, o occOp) (int, error) {
	retries := 0
	for {
		ot := core.NewOccTxn(sr.SnapshotView(), e.Name(), schema)
		err := func() error {
			switch o.kind {
			case 'i':
				row, ok, err := ot.Get("users", o.a)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("shared key %d missing", o.a)
				}
				time.Sleep(o.pause)
				return ot.Update("users", o.a, core.Update{Cols: []int{1},
					Vals: []core.Value{core.IntVal(row[1].I + o.delta)}})
			case 't':
				ra, okA, err := ot.Get("users", o.a)
				if err != nil {
					return err
				}
				rb, okB, err := ot.Get("users", o.b)
				if err != nil {
					return err
				}
				if !okA || !okB {
					return fmt.Errorf("transfer keys %d/%d missing", o.a, o.b)
				}
				time.Sleep(o.pause)
				if err := ot.Update("users", o.a, core.Update{Cols: []int{1},
					Vals: []core.Value{core.IntVal(ra[1].I - o.delta)}}); err != nil {
					return err
				}
				return ot.Update("users", o.b, core.Update{Cols: []int{1},
					Vals: []core.Value{core.IntVal(rb[1].I + o.delta)}})
			case 'p':
				if _, ok, err := ot.Get("items", o.a); err != nil {
					return err
				} else if ok {
					return ot.Update("items", o.a, core.Update{Cols: []int{1},
						Vals: []core.Value{core.IntVal(o.delta)}})
				}
				time.Sleep(o.pause)
				return ot.Insert("items", o.a, []core.Value{core.IntVal(int64(o.a)), core.IntVal(o.delta)})
			default: // 'x'
				time.Sleep(o.pause)
				return ot.Delete("items", o.a)
			}
		}()
		if err != nil {
			ot.Close()
			return retries, err
		}
		commitMu.Lock()
		verr := ot.Validate(vp.OccValidator())
		if verr == nil {
			verr = ot.Apply(e)
		}
		commitMu.Unlock()
		ot.Close()
		if verr == nil {
			return retries, nil
		}
		if errors.Is(verr, core.ErrConflict) {
			retries++
			continue // fresh snapshot, first committer won this round
		}
		return retries, verr
	}
}

// occSchedule runs one seeded schedule and returns how many OCC conflicts
// its workers absorbed.
func occSchedule(f Factory, seed int64) (int, error) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128,
		GroupCommitSize: 1, CheckpointEvery: 40}
	schema := testSchema()
	e, err := f.New(env, schema, opts)
	if err != nil {
		return 0, fmt.Errorf("New: %w", err)
	}
	sr, okSR := core.Engine(e).(core.SnapshotReader)
	vp, okVP := core.Engine(e).(core.OccValidatorProvider)
	if !okSR || !okVP {
		return 0, fmt.Errorf("engine %s lacks the MVCC substrate OCC needs", e.Name())
	}

	const sharedKeys = 6
	users := map[uint64]int64{}
	if err := e.Begin(); err != nil {
		return 0, err
	}
	for k := uint64(1); k <= sharedKeys; k++ {
		if err := e.Insert("users", k, []core.Value{core.IntVal(int64(k)), core.IntVal(100),
			core.StrVal(fmt.Sprintf("user-%d", k)), core.StrVal("seed row")}); err != nil {
			return 0, err
		}
		users[k] = 100
	}
	if err := e.Commit(); err != nil {
		return 0, err
	}

	workers := 2 + int(seed%2)
	streams := make([][]occOp, workers)
	items := map[uint64]int64{}
	for w := range streams {
		wrng := rand.New(rand.NewSource(seed*31 + int64(w)))
		streams[w] = genOCCOps(wrng, w, 12+wrng.Intn(8), sharedKeys)
		for _, o := range streams[w] {
			occApplyModel(users, items, o)
		}
	}

	var commitMu sync.Mutex
	var wg sync.WaitGroup
	retries := make([]int, workers)
	errs := make([]error, workers)
	for w := range streams {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, o := range streams[w] {
				n, err := occRunTxn(e, sr, vp, &commitMu, schema, o)
				retries[w] += n
				if err != nil {
					errs[w] = fmt.Errorf("worker %d op %v: %w", w, o, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	conflicts := 0
	for w := range errs {
		if errs[w] != nil {
			return 0, errs[w]
		}
		conflicts += retries[w]
	}

	verify := func(when string, eng core.Engine) error {
		for k, want := range users {
			row, ok, err := eng.Get("users", k)
			if err != nil || !ok {
				return fmt.Errorf("%s: users/%d: ok=%v err=%v", when, k, ok, err)
			}
			if row[1].I != want {
				return fmt.Errorf("%s: users/%d balance = %d, want %d — a committed effect was lost or doubled",
					when, k, row[1].I, want)
			}
		}
		got := map[uint64]int64{}
		if err := eng.ScanRange("items", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			got[pk] = row[1].I
			return true
		}); err != nil {
			return err
		}
		if len(got) != len(items) {
			return fmt.Errorf("%s: items rows = %d, want %d", when, len(got), len(items))
		}
		for k, want := range items {
			if got[k] != want {
				return fmt.Errorf("%s: items/%d = %d, want %d", when, k, got[k], want)
			}
		}
		return nil
	}
	if err := verify("live", e); err != nil {
		return conflicts, err
	}

	// Crash + reopen epilogue: the serialized commit history must recover.
	if err := e.Flush(); err != nil {
		return conflicts, fmt.Errorf("final flush: %w", err)
	}
	env.Dev.Crash()
	var env2 *core.Env
	if f.Volatile {
		env2, err = env.ReopenVolatile()
	} else {
		env2, err = env.Reopen()
	}
	if err != nil {
		return conflicts, fmt.Errorf("env reopen: %w", err)
	}
	e2, err := f.Open(env2, schema, opts)
	if err != nil {
		return conflicts, fmt.Errorf("recovery open: %w", err)
	}
	if err := verify("after power cycle", e2); err != nil {
		return conflicts, err
	}
	return conflicts, nil
}
