package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nstore/internal/core"
	"nstore/internal/txn2pc"
	"nstore/internal/wire"
)

// Cross-shard atomicity battery: each schedule builds 2-3 independent engine
// instances ("shards"), drives percolator-style 2PC transactions across them
// through the txn2pc protocol directly, and crashes the CLIENT at every 2PC
// phase boundary — before any prewrite, between prewrites, after all
// prewrites but before the commit point, right after the primary commit (the
// transaction is acked the instant that lands), and between secondary
// commits. Then every shard takes a device power cut and reopens. A recovery
// sweep resolves the orphaned locks the same way a reader would — through
// the primary shard's status record — and the battery asserts the one
// invariant 2PC exists for: a transaction is visible on ALL of its shards or
// NONE of them, and an acked commit survives everything.

// crossSchema is the battery's user table; AugmentSchemas adds the hidden
// lock and status tables the protocol needs.
func crossSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "acct",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "bal", Type: core.TInt},
			{Name: "note", Type: core.TString, Size: 64},
		},
	}}
}

func acctRow(key uint64, bal int64) []core.Value {
	return []core.Value{core.IntVal(int64(key)), core.IntVal(bal),
		core.StrVal(fmt.Sprintf("acct-%d", key))}
}

// crash phases, named after the boundary the client dies on.
const (
	xsPhaseNone = iota // runs to completion
	xsPhasePrePrewrite
	xsPhaseMidPrewrite      // some shards prewritten, some not
	xsPhasePreCommit        // all prewritten, commit point never reached
	xsPhasePostPrimary      // primary committed: ACKED, secondaries orphaned
	xsPhaseMidSecondary     // acked, some secondaries settled, some orphaned
	xsPhaseCount            // number of phases above
	xsTxnsPerSchedule   = 8 // transactions per seeded schedule
)

// RunCrossShardConformance drives `schedules` seeded cross-shard 2PC
// schedules (default 200; capped at 40 under -short) against the factory.
func RunCrossShardConformance(t *testing.T, f Factory, schedules int) {
	t.Helper()
	if testing.Short() && (schedules <= 0 || schedules > 40) {
		schedules = 40
	}
	if err := CheckCrossShardConformance(f, schedules, BaseSeed()); err != nil {
		t.Fatal(err)
	}
}

// CheckCrossShardConformance is the error-returning core, split out like the
// other batteries so a harness self-test can assert it has teeth.
func CheckCrossShardConformance(f Factory, schedules int, baseSeed int64) error {
	if schedules <= 0 {
		schedules = 200
	}
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		if err := crossShardSchedule(f, seed); err != nil {
			return fmt.Errorf("%s: cross-shard schedule %d [seed %d]: %w\nreplay: go test -run CrossShard -seed=%d",
				f.Name, i, seed, err, seed)
		}
	}
	return nil
}

// xsTxnRecord tracks one transaction's fate for the post-recovery audit.
type xsTxnRecord struct {
	txn      uint64
	acked    bool // primary commit landed before the client died
	touched  bool // at least one prewrite was issued
	priShard int
	priKey   uint64
}

func crossShardSchedule(f Factory, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	nshards := 2 + int(uint64(seed)%2)
	schemas := txn2pc.AugmentSchemas(crossSchema())
	opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128,
		GroupCommitSize: 1, CheckpointEvery: 40}

	envs := make([]*core.Env, nshards)
	engines := make([]core.Engine, nshards)
	committed := make([]map[uint64][]core.Value, nshards)
	nextKey := make([]uint64, nshards)
	for s := 0; s < nshards; s++ {
		envs[s] = core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
		e, err := f.New(envs[s], schemas, opts)
		if err != nil {
			return fmt.Errorf("shard %d: New: %w", s, err)
		}
		engines[s] = e
		committed[s] = make(map[uint64][]core.Value)
		nextKey[s] = uint64(s) + 1
	}

	var records []xsTxnRecord
	for t := 0; t < xsTxnsPerSchedule; t++ {
		txn := uint64(1000 + t)
		phase := xsPhaseNone
		if r := rng.Intn(2 * xsPhaseCount); r < xsPhaseCount {
			phase = r // half the txns crash, uniformly over the boundaries
		}
		rec, err := runCrossShardTxn(rng, engines, committed, nextKey, nshards, txn, phase)
		if err != nil {
			return fmt.Errorf("txn %d (phase %d): %w", txn, phase, err)
		}
		records = append(records, rec)
	}

	// Power cut on every shard, then recovery.
	for s := 0; s < nshards; s++ {
		envs[s].Dev.Crash()
		var env2 *core.Env
		var err error
		if f.Volatile {
			env2, err = envs[s].ReopenVolatile()
		} else {
			env2, err = envs[s].Reopen()
		}
		if err != nil {
			return fmt.Errorf("shard %d: reopen: %w", s, err)
		}
		engines[s], err = f.Open(env2, schemas, opts)
		if err != nil {
			return fmt.Errorf("shard %d: recovery open: %w", s, err)
		}
	}

	// Recovery sweep: resolve every orphaned lock through its primary.
	for s := 0; s < nshards; s++ {
		orphans, err := txn2pc.OrphanLocks(engines[s], schemas)
		if err != nil {
			return fmt.Errorf("shard %d: orphan scan: %w", s, err)
		}
		for _, locks := range orphans {
			for _, le := range locks {
				if err := resolveCrossShard(engines, s, le); err != nil {
					return fmt.Errorf("shard %d: resolving %v: %w", s, le, err)
				}
			}
		}
	}

	// All-or-nothing: every shard's visible state equals the model built from
	// acked transactions only; nothing from an unacked transaction leaked,
	// nothing from an acked one is missing.
	sch := crossSchema()[0]
	for s := 0; s < nshards; s++ {
		n := 0
		var bad error
		if err := engines[s].ScanRange("acct", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			n++
			want, ok := committed[s][pk]
			if !ok {
				bad = fmt.Errorf("shard %d: phantom key %d (unacked txn leaked)", s, pk)
				return false
			}
			if !core.RowsEqual(sch, row, want) {
				bad = fmt.Errorf("shard %d: key %d = %v, want %v", s, pk, row, want)
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("shard %d: scan: %w", s, err)
		}
		if bad != nil {
			return bad
		}
		if n != len(committed[s]) {
			return fmt.Errorf("shard %d: %d visible rows, acked model has %d (acked commit lost)", s, n, len(committed[s]))
		}
		// The sweep must leave no locks behind.
		left, err := txn2pc.OrphanLocks(engines[s], schemas)
		if err != nil {
			return err
		}
		if len(left) != 0 {
			return fmt.Errorf("shard %d: %d transactions still hold locks after resolution", s, len(left))
		}
	}

	// The primary record is the ground truth the resolution followed: acked
	// transactions read committed, crashed-before-commit ones read aborted.
	for _, rec := range records {
		if !rec.touched {
			continue
		}
		st, err := txn2pc.State(engines[rec.priShard], rec.txn)
		if err != nil {
			return err
		}
		if rec.acked && st != wire.TxnCommitted {
			return fmt.Errorf("acked txn %d: primary state %d, want committed", rec.txn, st)
		}
		if !rec.acked && st == wire.TxnCommitted {
			return fmt.Errorf("unacked txn %d surfaced as committed", rec.txn)
		}
	}

	// Shards stay usable.
	for s := 0; s < nshards; s++ {
		probe := uint64(1) << 40
		e := engines[s]
		if err := txn2pc.Run(e, func() error { return e.Insert("acct", probe, acctRow(probe, 1)) }); err != nil {
			return fmt.Errorf("shard %d: post-recovery probe: %w", s, err)
		}
	}
	return nil
}

// runCrossShardTxn drives one 2PC transaction up to its crash phase,
// resolving any orphan lock it trips over exactly the way a live reader
// would. The committed model is updated the moment the transaction is acked
// (primary commit durable) — even when secondaries are still orphaned,
// because resolution MUST roll them forward.
func runCrossShardTxn(rng *rand.Rand, engines []core.Engine,
	committed []map[uint64][]core.Value, nextKey []uint64,
	nshards int, txn uint64, phase int) (xsTxnRecord, error) {

	rec := xsTxnRecord{txn: txn}
	if phase == xsPhasePrePrewrite {
		return rec, nil // the client died before doing anything
	}

	// Span 2..nshards shards in random order; the first is the primary.
	span := rng.Perm(nshards)
	width := 2
	if nshards > 2 && rng.Intn(2) == 0 {
		width = 3
	}
	span = span[:width]

	type group struct {
		shard int
		subs  []wire.Request
		apply []func()
		refs  []wire.LockRef
	}
	groups := make([]group, 0, width)
	for _, s := range span {
		g := group{shard: s}
		s := s
		for o := 0; o < 1+rng.Intn(2); o++ {
			keys := sortedModelKeys(committed[s])
			switch {
			case len(keys) > 0 && rng.Intn(3) == 0: // RMW an acked row
				k := keys[rng.Intn(len(keys))]
				if inRefs(g.refs, k) {
					continue
				}
				delta := int64(rng.Intn(100))
				g.subs = append(g.subs, wire.Request{Op: wire.OpRmw, Table: "acct", Key: k,
					Cols: []wire.RmwCol{{Col: 1, Add: true, Val: core.IntVal(delta)}}})
				g.apply = append(g.apply, func() { committed[s][k][1].I += delta })
			case len(keys) > 0 && rng.Intn(4) == 0: // delete an acked row
				k := keys[rng.Intn(len(keys))]
				if inRefs(g.refs, k) {
					continue
				}
				g.subs = append(g.subs, wire.Request{Op: wire.OpDelete, Table: "acct", Key: k})
				g.apply = append(g.apply, func() { delete(committed[s], k) })
			default: // insert a fresh row
				k := nextKey[s]
				nextKey[s] += uint64(nshards)
				row := acctRow(k, int64(rng.Intn(1000)))
				g.subs = append(g.subs, wire.Request{Op: wire.OpPut, Table: "acct", Key: k, Row: core.CloneRow(row)})
				g.apply = append(g.apply, func() { committed[s][k] = core.CloneRow(row) })
			}
			g.refs = append(g.refs, wire.LockRef{Table: "acct", Key: g.subs[len(g.subs)-1].Key})
		}
		groups = append(groups, g)
	}
	primary := groups[0]
	rec.priShard = primary.shard
	rec.priKey = primary.subs[0].Key

	prewrite := func(g group) error {
		req := &wire.Request{Op: wire.OpTxnPrewrite, Txn: txn,
			PriShard: int32(primary.shard), Table: "acct", Key: primary.subs[0].Key,
			Ops: g.subs}
		for attempt := 0; ; attempt++ {
			err := txn2pc.Run(engines[g.shard], func() error {
				return txn2pc.Prewrite(engines[g.shard], req)
			})
			le := txn2pc.AsLocked(err)
			if le == nil || attempt >= 4 {
				return err
			}
			// Orphan from an earlier crashed client: resolve and retry,
			// exactly the serving path's reader behavior.
			if err := resolveCrossShard(engines, g.shard, le); err != nil {
				return err
			}
		}
	}

	// Phase 1: prewrites, possibly dying between them.
	limit := len(groups)
	if phase == xsPhaseMidPrewrite {
		limit = 1 + rng.Intn(len(groups)) // at least the primary, maybe all
	}
	for i := 0; i < limit; i++ {
		if err := prewrite(groups[i]); err != nil {
			return rec, fmt.Errorf("prewrite shard %d: %w", groups[i].shard, err)
		}
		rec.touched = true
	}
	if phase == xsPhaseMidPrewrite || phase == xsPhasePreCommit {
		return rec, nil
	}

	// Phase 2: the primary commit IS the ack.
	pe := engines[primary.shard]
	if err := txn2pc.Run(pe, func() error {
		return txn2pc.Commit(pe, txn, true, primary.refs)
	}); err != nil {
		return rec, fmt.Errorf("primary commit: %w", err)
	}
	rec.acked = true
	for _, g := range groups {
		for _, fn := range g.apply {
			fn()
		}
	}
	if phase == xsPhasePostPrimary {
		return rec, nil
	}
	limit = len(groups)
	if phase == xsPhaseMidSecondary {
		limit = 1 + rng.Intn(len(groups)-1) // settle some secondaries, not all
	}
	for i := 1; i < limit; i++ {
		g := groups[i]
		e := engines[g.shard]
		if err := txn2pc.Run(e, func() error {
			return txn2pc.Commit(e, txn, false, g.refs)
		}); err != nil {
			return rec, fmt.Errorf("secondary commit shard %d: %w", g.shard, err)
		}
	}
	return rec, nil
}

// resolveCrossShard settles one orphaned lock held on engines[shard]: ask the
// primary shard for the transaction's fate (forcing a rollback if it is still
// undecided — the owning client is gone), then roll this lock the SAME
// direction. The direction-agreement is the property satellite tests shrink
// against: a resolver that guesses differently from the primary record
// manufactures a partial commit.
func resolveCrossShard(engines []core.Engine, shard int, le *txn2pc.LockedError) error {
	if int(le.PriShard) < 0 || int(le.PriShard) >= len(engines) {
		return fmt.Errorf("lock names out-of-range primary shard %d", le.PriShard)
	}
	pri := engines[le.PriShard]
	var verdict byte
	if err := txn2pc.Run(pri, func() error {
		v, err := txn2pc.Resolve(pri, le.Txn, le.PriTable, le.PriKey, true)
		verdict = v
		return err
	}); err != nil {
		return fmt.Errorf("resolve txn %d on primary shard %d: %w", le.Txn, le.PriShard, err)
	}
	e := engines[shard]
	refs := []wire.LockRef{{Table: le.Table, Key: le.Key}}
	if verdict == wire.TxnCommitted {
		return txn2pc.Run(e, func() error { return txn2pc.Commit(e, le.Txn, false, refs) })
	}
	return txn2pc.Run(e, func() error { return txn2pc.Abort(e, le.Txn, false, refs) })
}

// sortedModelKeys returns the model's keys in deterministic order — map
// iteration would make -seed replay diverge from the original run.
func sortedModelKeys(m map[uint64][]core.Value) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// inRefs reports whether key is already targeted by this group.
func inRefs(refs []wire.LockRef, key uint64) bool {
	for _, r := range refs {
		if r.Key == key {
			return true
		}
	}
	return false
}
