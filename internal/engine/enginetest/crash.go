package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/nvm"
)

// RunCrashInjection exercises an NVM-aware engine with power failures
// injected at random fence boundaries. Because these engines are durable at
// Commit, the recovered database must equal the model exactly as of the
// last successful Commit — the in-flight transaction (if any) must be
// entirely absent.
func RunCrashInjection(t *testing.T, f Factory, iterations int) {
	schema := testSchema()
	base := BaseSeed()
	for iter := 0; iter < iterations; iter++ {
		// Per-iteration seed, so a failure names the exact schedule and
		// replays with -seed=N (the log only surfaces when the test fails).
		seed := base + int64(iter)
		t.Logf("crash-injection iter %d: seed %d (replay: go test -run CrashInjection -seed=%d)", iter, seed, seed)
		rng := rand.New(rand.NewSource(seed))
		env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
		// GroupCommitSize 1: the CoW engines persist per batch, so the
		// strongest durable-at-commit contract needs one-txn batches.
		opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128, GroupCommitSize: 1}
		e, err := f.New(env, schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		committed := make(map[uint64][]core.Value) // model at last commit
		working := make(map[uint64][]core.Value)   // model incl. open txn

		env.Dev.FailAfterFences(50 + rng.Intn(2000))
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			for step := 0; step < 250; step++ {
				if err := e.Begin(); err != nil {
					t.Fatal(err)
				}
				// 1-3 operations per transaction.
				nops := 1 + rng.Intn(3)
				for o := 0; o < nops; o++ {
					key := uint64(rng.Intn(120)) + 1
					switch rng.Intn(3) {
					case 0:
						if _, exists := working[key]; !exists {
							row := userRow(int64(key))
							row[1].I = int64(rng.Intn(1000))
							if err := e.Insert("users", key, row); err != nil {
								t.Fatal(err)
							}
							working[key] = core.CloneRow(row)
						}
					case 1:
						if _, exists := working[key]; exists {
							upd := core.Update{Cols: []int{1, 3}, Vals: []core.Value{
								core.IntVal(int64(rng.Intn(1000))),
								core.StrVal(fmt.Sprintf("bio-%d-%d", iter, step)),
							}}
							if err := e.Update("users", key, upd); err != nil {
								t.Fatal(err)
							}
							row := core.CloneRow(working[key])
							core.ApplyDelta(row, upd)
							working[key] = row
						}
					case 2:
						if _, exists := working[key]; exists {
							if err := e.Delete("users", key); err != nil {
								t.Fatal(err)
							}
							delete(working, key)
						}
					}
				}
				if rng.Intn(8) == 0 {
					if err := e.Abort(); err != nil {
						t.Fatal(err)
					}
					working = cloneModel(committed)
				} else {
					if err := e.Commit(); err != nil {
						t.Fatal(err)
					}
					committed = cloneModel(working)
				}
			}
		}()
		env.Dev.DisarmFail()
		env.Dev.Crash()

		env2, err := env.Reopen()
		if err != nil {
			t.Fatalf("iter %d: reopen: %v", iter, err)
		}
		e2, err := f.Open(env2, schema, opts)
		if err != nil {
			t.Fatalf("iter %d (crashed=%v): open: %v", iter, crashed, err)
		}
		// Exact committed-state equality.
		for key, want := range committed {
			row, ok, err := e2.Get("users", key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("iter %d: committed key %d lost after crash", iter, key)
			}
			if !core.RowsEqual(schema[0], row, want) {
				t.Fatalf("iter %d: key %d = %v, want %v", iter, key, row, want)
			}
		}
		n := 0
		if err := e2.ScanRange("users", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			n++
			if _, ok := committed[pk]; !ok {
				t.Fatalf("iter %d: phantom key %d (in-flight txn leaked)", iter, pk)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(committed) {
			t.Fatalf("iter %d: scan found %d rows, committed model has %d", iter, n, len(committed))
		}
		// Secondary index consistent with the rows.
		for key, want := range committed {
			sec := uint32(want[1].I)
			found := false
			if err := e2.ScanSecondary("users", "by_balance", sec, func(pk uint64) bool {
				if pk == key {
					found = true
					return false
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("iter %d: key %d missing from secondary after crash", iter, key)
			}
		}
		// Engine usable after recovery.
		if err := e2.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := e2.Insert("users", 9999, userRow(9999)); err != nil {
			t.Fatal(err)
		}
		if err := e2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func cloneModel(m map[uint64][]core.Value) map[uint64][]core.Value {
	out := make(map[uint64][]core.Value, len(m))
	for k, v := range m {
		out[k] = core.CloneRow(v)
	}
	return out
}
