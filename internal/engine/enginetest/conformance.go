package enginetest

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/pmfs"
)

// seedFlag is the base seed for every fault-injection schedule in the
// battery. Schedule i derives its seed from base+i, and each failure report
// names the exact seed, so any observed failure replays with
//
//	go test -run RecoveryConformance -seed=<reported seed>
var seedFlag = flag.Int64("seed", 1, "base seed for fault-injection schedules")

// BaseSeed returns the -seed test flag (shared by the conformance,
// crash-injection, and differential batteries).
func BaseSeed() int64 { return *seedFlag }

// faultFamily is one class of injected failure. Exactly one of device/sync
// is set: device plans act on the NVM write-back hierarchy (all engines);
// sync faults act on the filesystem fsync path (traditional engines, whose
// durability runs entirely through pmfs).
type faultFamily struct {
	name   string
	device *nvm.FaultPlan
	sync   *pmfs.SyncFault
}

// conformanceFamilies returns the rotation of fault families for an engine.
func conformanceFamilies(volatile bool) []faultFamily {
	fams := []faultFamily{
		{name: "device-lose-all", device: &nvm.FaultPlan{Mode: nvm.FaultLoseAll}},
		{name: "device-reorder", device: &nvm.FaultPlan{Mode: nvm.FaultReorder, KeepProb: 0.5}},
		{name: "device-tear", device: &nvm.FaultPlan{Mode: nvm.FaultTear, KeepProb: 0.5, TearProb: 0.7}},
	}
	if volatile {
		fams = append(fams,
			faultFamily{name: "fsync-lost", sync: &pmfs.SyncFault{Mode: pmfs.SyncCrashLost}},
			faultFamily{name: "fsync-torn", sync: &pmfs.SyncFault{Mode: pmfs.SyncCrashTorn}},
			faultFamily{name: "fsync-after", sync: &pmfs.SyncFault{Mode: pmfs.SyncCrashAfter}},
		)
	}
	return fams
}

// cmodel is the in-memory reference state for both workload tables.
type cmodel struct {
	users map[uint64][]core.Value
	items map[uint64][]core.Value
}

func newCmodel() *cmodel {
	return &cmodel{users: make(map[uint64][]core.Value), items: make(map[uint64][]core.Value)}
}

func (m *cmodel) clone() *cmodel {
	return &cmodel{users: cloneModel(m.users), items: cloneModel(m.items)}
}

// RunRecoveryConformance drives the engine through `schedules` randomized
// workloads, each ending in a seeded injected crash — power loss at a fence
// boundary, reordered or torn cache-line write-back, and (for the
// traditional engines) lost or torn fsyncs — then recovers and asserts the
// exact committed state survived. Pass schedules <= 0 for the default
// battery size.
func RunRecoveryConformance(t *testing.T, f Factory, schedules int) {
	t.Helper()
	if err := CheckRecoveryConformance(f, schedules, BaseSeed()); err != nil {
		t.Fatal(err)
	}
}

// CheckRecoveryConformance is the error-returning core of
// RunRecoveryConformance, split out so the suite can verify it actually
// catches broken recovery protocols (see the fence-removal test).
func CheckRecoveryConformance(f Factory, schedules int, baseSeed int64) error {
	if schedules <= 0 {
		schedules = 200
	}
	fams := conformanceFamilies(f.Volatile)
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		// The family is derived from the seed (not the loop index) so a
		// failure replayed via -seed=N re-runs under the same family.
		fam := fams[int(uint64(seed)%uint64(len(fams)))]
		if err := conformanceSchedule(f, fam, seed); err != nil {
			return fmt.Errorf("%s: schedule %d [%s, seed %d]: %w\nreplay: go test -run RecoveryConformance -seed=%d",
				f.Name, i, fam.name, seed, err, seed)
		}
	}
	return nil
}

// conformanceSchedule runs one seeded workload + injected crash + recovery
// cycle and checks the recovered state against the committed model.
func conformanceSchedule(f Factory, fam faultFamily, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	// Small capacities force the interesting paths (MemTable flushes, LSM
	// merges, checkpoints) inside a short workload; GroupCommitSize 1 makes
	// every engine durable-at-commit, so the committed model is exact.
	// VlogThreshold 64 puts user rows (~85 B encoded) through value
	// separation in the Log engines while item rows stay inline, so every
	// crash schedule also exercises the value-log head replay and pointer
	// validation.
	opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128,
		GroupCommitSize: 1, CheckpointEvery: 40, VlogThreshold: 64}
	schema := testSchema()
	e, err := f.New(env, schema, opts)
	if err != nil {
		return fmt.Errorf("New: %w", err)
	}

	// Arm the fault after setup: the crash window is the workload itself.
	if fam.device != nil {
		p := *fam.device
		p.Seed = seed ^ 0x5eed
		// The NVM engines fence on every durable pointer store; the
		// traditional engines only fence at fsyncs, so their trigger range
		// must be narrower to land inside the workload.
		if f.Volatile {
			p.CrashAfterFences = 5 + rng.Intn(200)
		} else {
			p.CrashAfterFences = 5 + rng.Intn(600)
		}
		env.Dev.InjectFaults(p)
	} else {
		sf := *fam.sync
		sf.Seed = seed ^ 0x5eed
		sf.AfterSyncs = rng.Intn(120)
		env.FS.InjectSyncFault(sf)
	}

	committed := newCmodel()
	working := newCmodel()
	crashed := false
	// A crash while Commit is in flight is the one ambiguous moment: the
	// durable point may or may not have been reached, so recovery may
	// legitimately surface either the pre- or post-commit state.
	crashInCommit := false
	phase := ""

	runErr := func() (rerr error) {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrInjectedCrash {
					panic(r)
				}
				crashed = true
				crashInCommit = phase == "commit"
			}
		}()
		for step := 0; step < 100; step++ {
			phase = "begin"
			if err := e.Begin(); err != nil {
				return fmt.Errorf("step %d: Begin: %w", step, err)
			}
			nops := 1 + rng.Intn(3)
			for o := 0; o < nops; o++ {
				phase = "op"
				if rng.Intn(4) == 3 {
					if err := itemOp(rng, e, working); err != nil {
						return fmt.Errorf("step %d: %w", step, err)
					}
				} else if err := userOp(rng, e, working, step); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
			if rng.Intn(8) == 0 {
				phase = "abort"
				if err := e.Abort(); err != nil {
					return fmt.Errorf("step %d: Abort: %w", step, err)
				}
				working = committed.clone()
			} else {
				phase = "commit"
				if err := e.Commit(); err != nil {
					return fmt.Errorf("step %d: Commit: %w", step, err)
				}
				committed = working.clone()
			}
		}
		return nil
	}()
	if runErr != nil {
		return runErr
	}

	// Whether or not the trigger fired, cut the power: Crash applies the
	// plan's reorder/tear effects to whatever is still un-fenced.
	env.Dev.Crash()
	var env2 *core.Env
	if f.Volatile {
		env2, err = env.ReopenVolatile()
	} else {
		env2, err = env.Reopen()
	}
	if err != nil {
		return fmt.Errorf("env reopen (crashed=%v): %w", crashed, err)
	}
	e2, err := f.Open(env2, schema, opts)
	if err != nil {
		return fmt.Errorf("recovery open (crashed=%v): %w", crashed, err)
	}

	if errC := checkState(e2, schema, committed); errC != nil {
		if !crashInCommit {
			return fmt.Errorf("recovered state != committed model (crashed=%v, phase=%s): %w", crashed, phase, errC)
		}
		if errW := checkState(e2, schema, working); errW != nil {
			return fmt.Errorf("crash in Commit, recovered state matches neither pre-commit (%v) nor post-commit (%v) model", errC, errW)
		}
	}

	// The engine must be fully usable after recovery.
	if err := e2.Begin(); err != nil {
		return fmt.Errorf("post-recovery Begin: %w", err)
	}
	probe := uint64(1) << 40
	if err := e2.Insert("users", probe, userRow(int64(probe))); err != nil {
		return fmt.Errorf("post-recovery Insert: %w", err)
	}
	if err := e2.Commit(); err != nil {
		return fmt.Errorf("post-recovery Commit: %w", err)
	}
	if _, ok, err := e2.Get("users", probe); err != nil || !ok {
		return fmt.Errorf("post-recovery probe row missing (ok=%v, err=%v)", ok, err)
	}
	return nil
}

// userOp applies one random mutation or read to the users table, mirroring
// it in the model.
func userOp(rng *rand.Rand, e core.Engine, m *cmodel, step int) error {
	key := uint64(rng.Intn(120)) + 1
	switch rng.Intn(4) {
	case 0:
		if _, exists := m.users[key]; exists {
			return nil
		}
		row := userRow(int64(key))
		row[1].I = int64(rng.Intn(1000))
		if err := e.Insert("users", key, row); err != nil {
			return fmt.Errorf("Insert users/%d: %w", key, err)
		}
		m.users[key] = core.CloneRow(row)
	case 1:
		if _, exists := m.users[key]; !exists {
			return nil
		}
		upd := core.Update{Cols: []int{1, 3}, Vals: []core.Value{
			core.IntVal(int64(rng.Intn(1000))),
			core.StrVal(fmt.Sprintf("bio-%d-%d", step, key)),
		}}
		if err := e.Update("users", key, upd); err != nil {
			return fmt.Errorf("Update users/%d: %w", key, err)
		}
		row := core.CloneRow(m.users[key])
		core.ApplyDelta(row, upd)
		m.users[key] = row
	case 2:
		if _, exists := m.users[key]; !exists {
			return nil
		}
		if err := e.Delete("users", key); err != nil {
			return fmt.Errorf("Delete users/%d: %w", key, err)
		}
		delete(m.users, key)
	case 3:
		row, ok, err := e.Get("users", key)
		if err != nil {
			return fmt.Errorf("Get users/%d: %w", key, err)
		}
		want, exists := m.users[key]
		if ok != exists || (ok && !core.RowsEqual(testSchema()[0], row, want)) {
			return fmt.Errorf("read users/%d diverged from model (ok=%v exists=%v)", key, ok, exists)
		}
	}
	return nil
}

// itemOp applies one random mutation to the items table.
func itemOp(rng *rand.Rand, e core.Engine, m *cmodel) error {
	key := uint64(rng.Intn(60)) + 1
	if _, exists := m.items[key]; !exists {
		row := []core.Value{core.IntVal(int64(key)), core.IntVal(int64(rng.Intn(500)))}
		if err := e.Insert("items", key, row); err != nil {
			return fmt.Errorf("Insert items/%d: %w", key, err)
		}
		m.items[key] = core.CloneRow(row)
		return nil
	}
	if rng.Intn(3) == 0 {
		if err := e.Delete("items", key); err != nil {
			return fmt.Errorf("Delete items/%d: %w", key, err)
		}
		delete(m.items, key)
		return nil
	}
	upd := core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(int64(rng.Intn(500)))}}
	if err := e.Update("items", key, upd); err != nil {
		return fmt.Errorf("Update items/%d: %w", key, err)
	}
	row := core.CloneRow(m.items[key])
	core.ApplyDelta(row, upd)
	m.items[key] = row
	return nil
}

// checkState asserts the engine's visible state — primary scans of both
// tables, point reads, and the secondary index — equals the model exactly.
func checkState(e core.Engine, schema []*core.Schema, m *cmodel) error {
	tables := []struct {
		name string
		sch  *core.Schema
		rows map[uint64][]core.Value
	}{
		{"users", schema[0], m.users},
		{"items", schema[1], m.items},
	}
	for _, tb := range tables {
		n := 0
		var bad error
		if err := e.ScanRange(tb.name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			n++
			want, ok := tb.rows[pk]
			if !ok {
				bad = fmt.Errorf("%s: phantom key %d", tb.name, pk)
				return false
			}
			if !core.RowsEqual(tb.sch, row, want) {
				bad = fmt.Errorf("%s: key %d row mismatch: got %v want %v", tb.name, pk, row, want)
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("%s: scan: %w", tb.name, err)
		}
		if bad != nil {
			return bad
		}
		if n != len(tb.rows) {
			return fmt.Errorf("%s: scan found %d rows, model has %d", tb.name, n, len(tb.rows))
		}
		for key, want := range tb.rows {
			row, ok, err := e.Get(tb.name, key)
			if err != nil {
				return fmt.Errorf("%s: Get %d: %w", tb.name, key, err)
			}
			if !ok {
				return fmt.Errorf("%s: committed key %d lost", tb.name, key)
			}
			if !core.RowsEqual(tb.sch, row, want) {
				return fmt.Errorf("%s: key %d point-read mismatch", tb.name, key)
			}
		}
	}
	for key, row := range m.users {
		sec := uint32(row[1].I)
		found := false
		if err := e.ScanSecondary("users", "by_balance", sec, func(pk uint64) bool {
			if pk == key {
				found = true
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("secondary scan: %w", err)
		}
		if !found {
			return fmt.Errorf("users: key %d missing from secondary by_balance=%d", key, sec)
		}
	}
	return nil
}
