package enginetest

import (
	"strings"
	"testing"

	"nstore/internal/core"
)

// Extra battery cases appended to Run.

func testMultiTableAtomicity(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})

	// A transaction spanning both tables commits atomically...
	do(t, e.Begin())
	do(t, e.Insert("users", 1, userRow(1)))
	do(t, e.Insert("items", 100, []core.Value{core.IntVal(100), core.IntVal(5)}))
	do(t, e.Commit())

	// ...and aborts atomically.
	do(t, e.Begin())
	do(t, e.Insert("users", 2, userRow(2)))
	do(t, e.Insert("items", 200, []core.Value{core.IntVal(200), core.IntVal(9)}))
	do(t, e.Update("items", 100, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(-7)}}))
	do(t, e.Abort())

	if _, ok, _ := e.Get("users", 2); ok {
		t.Error("aborted users insert visible")
	}
	if _, ok, _ := e.Get("items", 200); ok {
		t.Error("aborted items insert visible")
	}
	row, ok, _ := e.Get("items", 100)
	if !ok || row[1].I != 5 {
		t.Errorf("cross-table abort corrupted items: %v ok=%v", row, ok)
	}

	// Durability across tables after a crash.
	do(t, e.Flush())
	e2 := reopen(t, f, env, core.Options{})
	if _, ok, _ := e2.Get("users", 1); !ok {
		t.Error("users row lost")
	}
	if _, ok, _ := e2.Get("items", 100); !ok {
		t.Error("items row lost")
	}
}

func testScanRangeBoundaries(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	do(t, e.Begin())
	for _, k := range []uint64{1, 5, 10, 15, 20} {
		do(t, e.Insert("items", k, []core.Value{core.IntVal(int64(k)), core.IntVal(1)}))
	}
	do(t, e.Commit())

	collect := func(from, to uint64) []uint64 {
		var got []uint64
		do(t, e.ScanRange("items", from, to, func(pk uint64, row []core.Value) bool {
			got = append(got, pk)
			return true
		}))
		return got
	}
	if got := collect(5, 15); len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Errorf("[5,15) = %v, want [5 10]", got)
	}
	if got := collect(0, 1); len(got) != 0 {
		t.Errorf("[0,1) = %v, want empty", got)
	}
	if got := collect(21, 100); len(got) != 0 {
		t.Errorf("[21,100) = %v, want empty", got)
	}
	if got := collect(0, ^uint64(0)); len(got) != 5 {
		t.Errorf("full scan = %v, want 5 keys", got)
	}
	// Early termination.
	n := 0
	do(t, e.ScanRange("items", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
		n++
		return n < 2
	}))
	if n != 2 {
		t.Errorf("early-stop scan visited %d", n)
	}
}

func testEmptyAndLargeStrings(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	long := strings.Repeat("x", 190)
	do(t, e.Begin())
	do(t, e.Insert("users", 1, []core.Value{
		core.IntVal(1), core.IntVal(3), core.StrVal(""), core.StrVal(long),
	}))
	do(t, e.Commit())
	do(t, e.Flush())

	e2 := reopen(t, f, env, core.Options{})
	row, ok, _ := e2.Get("users", 1)
	if !ok {
		t.Fatal("row lost")
	}
	if len(row[2].S) != 0 {
		t.Errorf("empty string came back as %q", row[2].S)
	}
	if string(row[3].S) != long {
		t.Errorf("long string corrupted: %d bytes", len(row[3].S))
	}
	// Shrinking and growing a string column across recovery.
	do(t, e2.Begin())
	do(t, e2.Update("users", 1, core.Update{Cols: []int{3}, Vals: []core.Value{core.StrVal("tiny")}}))
	do(t, e2.Commit())
	do(t, e2.Begin())
	do(t, e2.Update("users", 1, core.Update{Cols: []int{2}, Vals: []core.Value{core.StrVal(long)}}))
	do(t, e2.Commit())
	row, _, _ = e2.Get("users", 1)
	if string(row[3].S) != "tiny" || string(row[2].S) != long {
		t.Errorf("resized strings wrong: %d/%d bytes", len(row[2].S), len(row[3].S))
	}
}

func testDeleteReinsert(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	for round := int64(0); round < 5; round++ {
		do(t, e.Begin())
		row := userRow(7)
		row[1].I = round
		do(t, e.Insert("users", 7, row))
		do(t, e.Commit())
		got, ok, _ := e.Get("users", 7)
		if !ok || got[1].I != round {
			t.Fatalf("round %d: %v ok=%v", round, got, ok)
		}
		do(t, e.Begin())
		do(t, e.Delete("users", 7))
		do(t, e.Commit())
	}
	// Delete + reinsert inside one transaction.
	do(t, e.Begin())
	do(t, e.Insert("users", 8, userRow(8)))
	do(t, e.Delete("users", 8))
	do(t, e.Insert("users", 8, userRow(88)))
	do(t, e.Commit())
	got, ok, _ := e.Get("users", 8)
	if !ok || string(got[2].S) != "user-88" {
		t.Fatalf("delete+reinsert in txn: %v ok=%v", got, ok)
	}
	do(t, e.Flush())
	e2 := reopen(t, f, env, core.Options{})
	got, ok, _ = e2.Get("users", 8)
	if !ok || string(got[2].S) != "user-88" {
		t.Fatalf("after crash: %v ok=%v", got, ok)
	}
	if _, ok, _ := e2.Get("users", 7); ok {
		t.Error("deleted key 7 resurrected")
	}
}

func testSecondaryDuplicates(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	// 40 rows all with the same balance: the composite keys must keep them
	// all retrievable.
	do(t, e.Begin())
	for i := int64(1); i <= 40; i++ {
		row := userRow(i)
		row[1].I = 777
		do(t, e.Insert("users", uint64(i), row))
	}
	do(t, e.Commit())
	var pks []uint64
	do(t, e.ScanSecondary("users", "by_balance", 777, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 40 {
		t.Fatalf("found %d of 40 duplicates", len(pks))
	}
	// Remove half; the rest stay findable.
	do(t, e.Begin())
	for i := int64(1); i <= 20; i++ {
		do(t, e.Delete("users", uint64(i)))
	}
	do(t, e.Commit())
	pks = pks[:0]
	do(t, e.ScanSecondary("users", "by_balance", 777, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 20 {
		t.Fatalf("found %d of 20 after deletes", len(pks))
	}
}
