// Package enginetest is a conformance battery run against every storage
// engine: CRUD semantics, transactional atomicity, secondary indexes, range
// scans, durability across crashes, and recovery of the exact committed
// state. Each engine package invokes Run with its constructors.
package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
)

// Factory describes how to build and recover one engine kind.
type Factory struct {
	Name string
	// New creates a fresh engine on a fresh environment.
	New func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error)
	// Open recovers the engine after a device crash.
	Open func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error)
	// Volatile marks traditional engines whose allocator region must be
	// reformatted on reopen.
	Volatile bool
}

// testSchema builds a small two-table schema with a secondary index.
func testSchema() []*core.Schema {
	users := &core.Schema{
		Name: "users",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "balance", Type: core.TInt},
			{Name: "name", Type: core.TString, Size: 64},
			{Name: "bio", Type: core.TString, Size: 200},
		},
		Secondary: []core.IndexSpec{{
			Name: "by_balance",
			SecKey: func(row []core.Value) uint32 {
				return uint32(row[1].I)
			},
		}},
	}
	items := &core.Schema{
		Name: "items",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "qty", Type: core.TInt},
		},
	}
	return []*core.Schema{users, items}
}

func userRow(id int64) []core.Value {
	return []core.Value{
		core.IntVal(id),
		core.IntVal(id % 100),
		core.StrVal(fmt.Sprintf("user-%d", id)),
		core.StrVal(fmt.Sprintf("bio of user %d with some padding text", id)),
	}
}

func newEnv(t testing.TB) *core.Env {
	t.Helper()
	return core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20, FSExtent: 256 << 10})
}

func mustEngine(t *testing.T, f Factory, env *core.Env, opts core.Options) core.Engine {
	t.Helper()
	e, err := f.New(env, testSchema(), opts)
	if err != nil {
		t.Fatalf("%s: New: %v", f.Name, err)
	}
	return e
}

func reopen(t *testing.T, f Factory, env *core.Env, opts core.Options) core.Engine {
	t.Helper()
	env.Dev.Crash()
	var env2 *core.Env
	var err error
	if f.Volatile {
		env2, err = env.ReopenVolatile()
	} else {
		env2, err = env.Reopen()
	}
	if err != nil {
		t.Fatalf("%s: env reopen: %v", f.Name, err)
	}
	e, err := f.Open(env2, testSchema(), opts)
	if err != nil {
		t.Fatalf("%s: Open: %v", f.Name, err)
	}
	return e
}

func do(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// Run executes the full battery against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("CRUD", func(t *testing.T) { testCRUD(t, f) })
	t.Run("TxnAtomicity", func(t *testing.T) { testTxnAtomicity(t, f) })
	t.Run("SecondaryIndex", func(t *testing.T) { testSecondary(t, f) })
	t.Run("RangeScan", func(t *testing.T) { testRangeScan(t, f) })
	t.Run("Durability", func(t *testing.T) { testDurability(t, f) })
	t.Run("RecoveryDiscardsUncommitted", func(t *testing.T) { testUncommitted(t, f) })
	t.Run("UpdateDurability", func(t *testing.T) { testUpdateDurability(t, f) })
	t.Run("DeleteDurability", func(t *testing.T) { testDeleteDurability(t, f) })
	t.Run("SecondaryAfterRecovery", func(t *testing.T) { testSecondaryAfterRecovery(t, f) })
	t.Run("Footprint", func(t *testing.T) { testFootprint(t, f) })
	t.Run("RandomizedModel", func(t *testing.T) { testRandomized(t, f) })
	t.Run("RandomizedWithRecovery", func(t *testing.T) { testRandomizedRecovery(t, f) })
	t.Run("MultiTableAtomicity", func(t *testing.T) { testMultiTableAtomicity(t, f) })
	t.Run("ScanRangeBoundaries", func(t *testing.T) { testScanRangeBoundaries(t, f) })
	t.Run("EmptyAndLargeStrings", func(t *testing.T) { testEmptyAndLargeStrings(t, f) })
	t.Run("DeleteReinsert", func(t *testing.T) { testDeleteReinsert(t, f) })
	t.Run("SecondaryDuplicates", func(t *testing.T) { testSecondaryDuplicates(t, f) })
	t.Run("CommitErrorUnwind", func(t *testing.T) { testCommitErrorUnwind(t, f) })
}

func testCRUD(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})

	do(t, e.Begin())
	do(t, e.Insert("users", 1, userRow(1)))
	if err := e.Insert("users", 1, userRow(1)); err != core.ErrKeyExists {
		t.Errorf("duplicate insert: %v", err)
	}
	row, ok, err := e.Get("users", 1)
	do(t, err)
	if !ok || row[0].I != 1 || string(row[2].S) != "user-1" {
		t.Fatalf("Get(1) = %v,%v", row, ok)
	}
	do(t, e.Update("users", 1, core.Update{Cols: []int{1, 2},
		Vals: []core.Value{core.IntVal(999), core.StrVal("renamed")}}))
	row, _, _ = e.Get("users", 1)
	if row[1].I != 999 || string(row[2].S) != "renamed" {
		t.Fatalf("after update: %v", row)
	}
	if string(row[3].S) != "bio of user 1 with some padding text" {
		t.Errorf("untouched column changed: %q", row[3].S)
	}
	do(t, e.Delete("users", 1))
	if _, ok, _ := e.Get("users", 1); ok {
		t.Error("deleted key still present")
	}
	if err := e.Delete("users", 1); err != core.ErrKeyNotFound {
		t.Errorf("double delete: %v", err)
	}
	if err := e.Update("users", 1, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(0)}}); err != core.ErrKeyNotFound {
		t.Errorf("update missing: %v", err)
	}
	do(t, e.Commit())

	// Ops outside a transaction fail.
	if err := e.Insert("users", 2, userRow(2)); err != core.ErrNoTxn {
		t.Errorf("insert outside txn: %v", err)
	}
}

func testTxnAtomicity(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})

	do(t, e.Begin())
	do(t, e.Insert("users", 10, userRow(10)))
	do(t, e.Commit())

	// Aborted txn: all three op types must roll back.
	do(t, e.Begin())
	do(t, e.Insert("users", 11, userRow(11)))
	do(t, e.Update("users", 10, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(-5)}}))
	do(t, e.Delete("users", 10)) // delete the updated row too
	do(t, e.Abort())

	if _, ok, _ := e.Get("users", 11); ok {
		t.Error("aborted insert visible")
	}
	row, ok, _ := e.Get("users", 10)
	if !ok {
		t.Fatal("aborted delete removed the row")
	}
	if row[1].I != 10%100 {
		t.Errorf("aborted update persisted: balance=%d", row[1].I)
	}
	// Secondary index must reflect the rollback.
	found := false
	do(t, e.ScanSecondary("users", "by_balance", uint32(10%100), func(pk uint64) bool {
		if pk == 10 {
			found = true
		}
		return true
	}))
	if !found {
		t.Error("secondary entry lost after abort")
	}
	var wrong bool
	do(t, e.ScanSecondary("users", "by_balance", uint32(4294967291), func(pk uint64) bool {
		wrong = true
		return false
	}))
	_ = wrong
}

func testSecondary(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})

	do(t, e.Begin())
	for i := int64(1); i <= 300; i++ {
		do(t, e.Insert("users", uint64(i), userRow(i)))
	}
	do(t, e.Commit())

	// balance = i%100, so each balance class has 3 members.
	var pks []uint64
	do(t, e.ScanSecondary("users", "by_balance", 42, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 3 {
		t.Fatalf("balance=42 matched %d pks: %v", len(pks), pks)
	}
	want := map[uint64]bool{42: true, 142: true, 242: true}
	for _, pk := range pks {
		if !want[pk] {
			t.Errorf("unexpected pk %d", pk)
		}
	}

	// Updating the secondary key moves the entry.
	do(t, e.Begin())
	do(t, e.Update("users", 42, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(7777)}}))
	do(t, e.Commit())
	pks = pks[:0]
	do(t, e.ScanSecondary("users", "by_balance", 42, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 2 {
		t.Errorf("after re-key, balance=42 matched %v", pks)
	}
	pks = pks[:0]
	do(t, e.ScanSecondary("users", "by_balance", 7777, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 1 || pks[0] != 42 {
		t.Errorf("balance=7777 matched %v", pks)
	}
}

func testRangeScan(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	do(t, e.Begin())
	for i := int64(1); i <= 100; i++ {
		do(t, e.Insert("items", uint64(i*10), []core.Value{core.IntVal(i * 10), core.IntVal(i)}))
	}
	do(t, e.Commit())

	var keys []uint64
	do(t, e.ScanRange("items", 250, 500, func(pk uint64, row []core.Value) bool {
		keys = append(keys, pk)
		if row[0].I != int64(pk) {
			t.Errorf("row/key mismatch at %d", pk)
		}
		return true
	}))
	if len(keys) != 25 {
		t.Fatalf("range scan found %d keys (%v)", len(keys), keys)
	}
	for i, k := range keys {
		if k != uint64(250+i*10) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func testDurability(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{}
	e := mustEngine(t, f, env, opts)
	for i := int64(1); i <= 200; i++ {
		do(t, e.Begin())
		do(t, e.Insert("users", uint64(i), userRow(i)))
		do(t, e.Commit())
	}
	do(t, e.Flush())

	e2 := reopen(t, f, env, opts)
	for i := int64(1); i <= 200; i++ {
		row, ok, err := e2.Get("users", uint64(i))
		do(t, err)
		if !ok {
			t.Fatalf("key %d lost after crash", i)
		}
		if !core.RowsEqual(testSchema()[0], row, userRow(i)) {
			t.Fatalf("key %d corrupted after crash: %v", i, row)
		}
	}
}

func testUncommitted(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{}
	e := mustEngine(t, f, env, opts)
	do(t, e.Begin())
	do(t, e.Insert("users", 1, userRow(1)))
	do(t, e.Commit())
	do(t, e.Flush())

	// In-flight txn at crash time: must not survive.
	do(t, e.Begin())
	do(t, e.Insert("users", 2, userRow(2)))
	do(t, e.Update("users", 1, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(-1)}}))
	// Push everything (including uncommitted stores) to the medium: the
	// adversarial eviction case undo-based recovery must handle.
	env.Dev.EvictAll()

	e2 := reopen(t, f, env, opts)
	if _, ok, _ := e2.Get("users", 2); ok {
		t.Error("uncommitted insert survived recovery")
	}
	row, ok, _ := e2.Get("users", 1)
	if !ok {
		t.Fatal("committed row lost")
	}
	if row[1].I == -1 {
		t.Error("uncommitted update survived recovery")
	}
}

func testUpdateDurability(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{}
	e := mustEngine(t, f, env, opts)
	do(t, e.Begin())
	do(t, e.Insert("users", 5, userRow(5)))
	do(t, e.Commit())
	do(t, e.Begin())
	do(t, e.Update("users", 5, core.Update{Cols: []int{1, 3},
		Vals: []core.Value{core.IntVal(4242), core.StrVal("updated bio")}}))
	do(t, e.Commit())
	do(t, e.Flush())

	e2 := reopen(t, f, env, opts)
	row, ok, _ := e2.Get("users", 5)
	if !ok {
		t.Fatal("row lost")
	}
	if row[1].I != 4242 || string(row[3].S) != "updated bio" {
		t.Fatalf("update lost after crash: %v", row)
	}
	if string(row[2].S) != "user-5" {
		t.Errorf("untouched column corrupted: %q", row[2].S)
	}
}

func testDeleteDurability(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{}
	e := mustEngine(t, f, env, opts)
	do(t, e.Begin())
	do(t, e.Insert("users", 7, userRow(7)))
	do(t, e.Insert("users", 8, userRow(8)))
	do(t, e.Commit())
	do(t, e.Begin())
	do(t, e.Delete("users", 7))
	do(t, e.Commit())
	do(t, e.Flush())

	e2 := reopen(t, f, env, opts)
	if _, ok, _ := e2.Get("users", 7); ok {
		t.Error("deleted row resurrected after crash")
	}
	if _, ok, _ := e2.Get("users", 8); !ok {
		t.Error("surviving row lost")
	}
}

func testSecondaryAfterRecovery(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{}
	e := mustEngine(t, f, env, opts)
	do(t, e.Begin())
	for i := int64(1); i <= 50; i++ {
		do(t, e.Insert("users", uint64(i), userRow(i)))
	}
	do(t, e.Commit())
	do(t, e.Flush())

	e2 := reopen(t, f, env, opts)
	var pks []uint64
	do(t, e2.ScanSecondary("users", "by_balance", 13, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}))
	if len(pks) != 1 || pks[0] != 13 {
		t.Errorf("secondary after recovery: %v", pks)
	}
}

func testFootprint(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	base := e.Footprint().Total()
	do(t, e.Begin())
	for i := int64(1); i <= 500; i++ {
		do(t, e.Insert("users", uint64(i), userRow(i)))
	}
	do(t, e.Commit())
	do(t, e.Flush())
	after := e.Footprint().Total()
	if after <= base {
		t.Errorf("footprint did not grow: %d -> %d", base, after)
	}
}

func testRandomized(t *testing.T, f Factory) {
	env := newEnv(t)
	e := mustEngine(t, f, env, core.Options{})
	model := make(map[uint64][]core.Value)
	rng := rand.New(rand.NewSource(11))
	schema := testSchema()[0]

	for step := 0; step < 2000; step++ {
		key := uint64(rng.Intn(400)) + 1
		do(t, e.Begin())
		abort := rng.Intn(10) == 0
		var applied func()
		switch rng.Intn(4) {
		case 0: // insert
			row := userRow(int64(key))
			row[1].I = int64(rng.Intn(100000))
			err := e.Insert("users", key, row)
			if _, exists := model[key]; exists {
				if err != core.ErrKeyExists {
					t.Fatalf("step %d: dup insert err=%v", step, err)
				}
			} else {
				do(t, err)
				applied = func() { model[key] = core.CloneRow(row) }
			}
		case 1: // update
			upd := core.Update{Cols: []int{1, 3},
				Vals: []core.Value{core.IntVal(int64(rng.Intn(100000))),
					core.StrVal(fmt.Sprintf("bio-%d", step))}}
			err := e.Update("users", key, upd)
			if _, exists := model[key]; !exists {
				if err != core.ErrKeyNotFound {
					t.Fatalf("step %d: update missing err=%v", step, err)
				}
			} else {
				do(t, err)
				applied = func() {
					row := core.CloneRow(model[key])
					core.ApplyDelta(row, upd)
					model[key] = row
				}
			}
		case 2: // delete
			err := e.Delete("users", key)
			if _, exists := model[key]; !exists {
				if err != core.ErrKeyNotFound {
					t.Fatalf("step %d: delete missing err=%v", step, err)
				}
			} else {
				do(t, err)
				applied = func() { delete(model, key) }
			}
		case 3: // read
			row, ok, err := e.Get("users", key)
			do(t, err)
			mrow, exists := model[key]
			if ok != exists || (ok && !core.RowsEqual(schema, row, mrow)) {
				t.Fatalf("step %d: read mismatch for %d: ok=%v exists=%v", step, key, ok, exists)
			}
		}
		if abort {
			do(t, e.Abort())
		} else {
			do(t, e.Commit())
			if applied != nil {
				applied()
			}
		}
	}
	// Full verification.
	for k, mrow := range model {
		row, ok, _ := e.Get("users", k)
		if !ok || !core.RowsEqual(schema, row, mrow) {
			t.Fatalf("final check: key %d mismatch (ok=%v)", k, ok)
		}
	}
}

func testRandomizedRecovery(t *testing.T, f Factory) {
	env := newEnv(t)
	opts := core.Options{GroupCommitSize: 4}
	e := mustEngine(t, f, env, opts)
	model := make(map[uint64][]core.Value)
	rng := rand.New(rand.NewSource(23))
	schema := testSchema()[0]

	for round := 0; round < 4; round++ {
		for step := 0; step < 300; step++ {
			key := uint64(rng.Intn(200)) + 1
			do(t, e.Begin())
			switch rng.Intn(3) {
			case 0:
				row := userRow(int64(key))
				row[1].I = int64(rng.Intn(1000))
				if _, exists := model[key]; !exists {
					do(t, e.Insert("users", key, row))
					model[key] = core.CloneRow(row)
				}
			case 1:
				if _, exists := model[key]; exists {
					upd := core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(int64(rng.Intn(1000)))}}
					do(t, e.Update("users", key, upd))
					row := core.CloneRow(model[key])
					core.ApplyDelta(row, upd)
					model[key] = row
				}
			case 2:
				if _, exists := model[key]; exists {
					do(t, e.Delete("users", key))
					delete(model, key)
				}
			}
			do(t, e.Commit())
		}
		do(t, e.Flush())
		e = reopen(t, f, env, opts)
		env = engineEnv(e)
		for k, mrow := range model {
			row, ok, _ := e.Get("users", k)
			if !ok || !core.RowsEqual(schema, row, mrow) {
				t.Fatalf("round %d: key %d mismatch after recovery (ok=%v)", round, k, ok)
			}
		}
		// And nothing extra.
		n := 0
		do(t, e.ScanRange("users", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			n++
			if _, exists := model[pk]; !exists {
				t.Fatalf("round %d: phantom key %d after recovery", round, pk)
			}
			return true
		}))
		if n != len(model) {
			t.Fatalf("round %d: scan found %d rows, model has %d", round, n, len(model))
		}
	}
}

// engineEnv extracts the environment from an engine via the Base embed.
type envHolder interface{ Environment() *core.Env }

func engineEnv(e core.Engine) *core.Env {
	if h, ok := e.(envHolder); ok {
		return h.Environment()
	}
	panic("enginetest: engine does not expose Environment()")
}
