package enginetest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"nstore/internal/core"
)

// RunSnapshotConformance drives the engine through `schedules` seeded
// concurrent read/write workloads and asserts snapshot isolation: every
// view pinned by a concurrent reader is an exact, prefix-consistent
// committed snapshot — no dirty reads, no torn scans, no phantom or lost
// rows — view timestamps never move backwards, and a clean power cycle
// rebuilds the same durable frontier. Pass schedules <= 0 for the default
// battery (200); -short runs 40. A failure names its seed; replay with
//
//	go test -run SnapshotConformance -seed=<reported seed>
func RunSnapshotConformance(t *testing.T, f Factory, schedules int) {
	t.Helper()
	if schedules <= 0 {
		schedules = 200
	}
	if testing.Short() && schedules > 40 {
		schedules = 40
	}
	if err := CheckSnapshotConformance(f, schedules, BaseSeed()); err != nil {
		t.Fatal(err)
	}
}

// CheckSnapshotConformance is the error-returning core of
// RunSnapshotConformance.
func CheckSnapshotConformance(f Factory, schedules int, baseSeed int64) error {
	if schedules <= 0 {
		schedules = 200
	}
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		if err := snapshotSchedule(f, seed); err != nil {
			return fmt.Errorf("%s: schedule %d [seed %d]: %w\nreplay: go test -run SnapshotConformance -seed=%d",
				f.Name, i, seed, err, seed)
		}
	}
	return nil
}

// snapEntry records the exact committed state whose publication advanced
// the oracle to ts. The writer appends inside the same critical section as
// Commit, so a reader that pinned a view at ts T and then takes the lock is
// guaranteed to find T's entry (the oracle only reaches T inside that
// section).
type snapEntry struct {
	ts    uint64
	users map[uint64][]core.Value
}

// snapshotSchedule runs one seeded schedule: a single-owner writer commits,
// aborts and deletes through the engine while concurrent readers pin views
// and compare them against the logged committed history, then a clean power
// cycle must recover exactly the final committed snapshot.
func snapshotSchedule(f Factory, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	// GroupCommitSize 1 makes every commit durable — and therefore visible
	// to snapshots — by the time Commit returns, so the logged model is the
	// exact expectation for any view at that timestamp. Small capacities
	// keep MemTable flushes and checkpoints inside the schedule.
	opts := core.Options{MemTableCap: 32, LSMGrowth: 3, BTreeNodeSize: 128,
		GroupCommitSize: 1, CheckpointEvery: 40}
	schema := testSchema()
	e, err := f.New(env, schema, opts)
	if err != nil {
		return fmt.Errorf("New: %w", err)
	}
	sr, ok := core.Engine(e).(core.SnapshotReader)
	if !ok {
		return fmt.Errorf("engine %s does not implement core.SnapshotReader", e.Name())
	}

	var mu sync.Mutex
	hist := []snapEntry{{ts: sr.Oracle().ReadTs(), users: map[uint64][]core.Value{}}}

	var stop atomic.Bool
	var readerErr atomic.Value
	var wg sync.WaitGroup
	readers := 2 + int(seed&1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTs uint64
			for !stop.Load() {
				v := sr.SnapshotView()
				err := checkSnapshotView(v, schema[0], &mu, &hist, lastTs)
				if v.Ts() > lastTs {
					lastTs = v.Ts()
				}
				v.Close()
				if err != nil {
					readerErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}

	committed := map[uint64][]core.Value{}
	working := map[uint64][]core.Value{}
	steps := 25 + rng.Intn(25)
	writeErr := func() error {
		for step := 0; step < steps; step++ {
			if err := e.Begin(); err != nil {
				return fmt.Errorf("step %d: Begin: %w", step, err)
			}
			nops := 1 + rng.Intn(3)
			for o := 0; o < nops; o++ {
				if err := snapshotMutate(e, working, rng); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
			if rng.Intn(6) == 0 {
				if err := e.Abort(); err != nil {
					return fmt.Errorf("step %d: Abort: %w", step, err)
				}
				working = cloneModel(committed)
				continue
			}
			// Commit and the history append share the critical section: the
			// oracle advances to this transaction's timestamp inside Commit,
			// so no reader can pin that timestamp and miss its entry.
			mu.Lock()
			err := e.Commit()
			if err == nil {
				committed = cloneModel(working)
				hist = append(hist, snapEntry{ts: sr.Oracle().ReadTs(), users: committed})
			}
			mu.Unlock()
			if err != nil {
				return fmt.Errorf("step %d: Commit: %w", step, err)
			}
			working = cloneModel(committed)
		}
		return nil
	}()
	stop.Store(true)
	wg.Wait()
	if writeErr != nil {
		return writeErr
	}
	if err, _ := readerErr.Load().(error); err != nil {
		return fmt.Errorf("concurrent reader: %w", err)
	}

	// A clean power cycle must recover exactly the final committed
	// snapshot, with the rebuilt oracle's floor serving it.
	if err := e.Flush(); err != nil {
		return fmt.Errorf("pre-crash Flush: %w", err)
	}
	env.Dev.Crash()
	var env2 *core.Env
	if f.Volatile {
		env2, err = env.ReopenVolatile()
	} else {
		env2, err = env.Reopen()
	}
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	e2, err := f.Open(env2, schema, opts)
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	sr2, ok := core.Engine(e2).(core.SnapshotReader)
	if !ok {
		return fmt.Errorf("recovered engine lost core.SnapshotReader")
	}
	var recoveredMu sync.Mutex
	recoveredHist := []snapEntry{{ts: sr2.Oracle().ReadTs(), users: committed}}
	v := sr2.SnapshotView()
	err = checkSnapshotView(v, schema[0], &recoveredMu, &recoveredHist, 0)
	v.Close()
	if err != nil {
		return fmt.Errorf("post-recovery snapshot != final committed state: %w", err)
	}
	return nil
}

// snapshotMutate applies one random users-table op to the engine and the
// working model: insert a fresh key, update or delete an existing one.
func snapshotMutate(e core.Engine, working map[uint64][]core.Value, rng *rand.Rand) error {
	key := uint64(rng.Intn(48))
	if _, exists := working[key]; !exists {
		row := userRow(int64(key) + rng.Int63n(1000))
		row[0] = core.IntVal(int64(key))
		if err := e.Insert("users", key, row); err != nil {
			return fmt.Errorf("Insert users/%d: %w", key, err)
		}
		working[key] = row
		return nil
	}
	if rng.Intn(4) == 0 {
		if err := e.Delete("users", key); err != nil {
			return fmt.Errorf("Delete users/%d: %w", key, err)
		}
		delete(working, key)
		return nil
	}
	upd := core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(int64(rng.Intn(500)))}}
	if err := e.Update("users", key, upd); err != nil {
		return fmt.Errorf("Update users/%d: %w", key, err)
	}
	row := core.CloneRow(working[key])
	core.ApplyDelta(row, upd)
	working[key] = row
	return nil
}

// checkSnapshotView asserts that the view is exactly the committed state
// logged at the newest history entry with ts <= view ts: a full range scan
// with no torn, phantom, stale or missing rows, point reads agreeing with
// the scan, an absent-key probe, and secondary-index membership. minTs is
// the reader's previous view timestamp (monotonicity).
func checkSnapshotView(v core.ReadView, users *core.Schema, mu *sync.Mutex, hist *[]snapEntry, minTs uint64) error {
	ts := v.Ts()
	if ts < minTs {
		return fmt.Errorf("view timestamps went backwards: %d after %d", ts, minTs)
	}
	mu.Lock()
	entries := *hist
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].ts <= ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		first := entries[0].ts
		mu.Unlock()
		return fmt.Errorf("view ts %d below the history floor %d", ts, first)
	}
	want := entries[lo-1].users
	wantTs := entries[lo-1].ts
	mu.Unlock()

	// Torn-scan / dirty-read check: the full scan must yield exactly the
	// committed rows of the matched entry — a commit published between this
	// view and a newer one must be invisible in its entirety.
	n := 0
	var bad error
	if err := v.ScanRange("users", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
		n++
		wrow, ok := want[pk]
		if !ok {
			bad = fmt.Errorf("view ts %d: phantom key %d (model ts %d)", ts, pk, wantTs)
			return false
		}
		if !core.RowsEqual(users, row, wrow) {
			bad = fmt.Errorf("view ts %d: key %d mismatch: got %v want %v (model ts %d)", ts, pk, row, wrow, wantTs)
			return false
		}
		return true
	}); err != nil {
		return fmt.Errorf("view ts %d: scan: %w", ts, err)
	}
	if bad != nil {
		return bad
	}
	if n != len(want) {
		return fmt.Errorf("view ts %d: scan saw %d rows, model at ts %d has %d (torn or lost commit)", ts, n, wantTs, len(want))
	}

	probes := 0
	for key, wrow := range want {
		row, ok, err := v.Get("users", key)
		if err != nil {
			return fmt.Errorf("view ts %d: Get %d: %w", ts, key, err)
		}
		if !ok {
			return fmt.Errorf("view ts %d: committed key %d invisible", ts, key)
		}
		if !core.RowsEqual(users, row, wrow) {
			return fmt.Errorf("view ts %d: key %d point read disagrees with model", ts, key)
		}
		sec := uint32(wrow[1].I)
		found := false
		if err := v.ScanSecondary("users", "by_balance", sec, func(pk uint64) bool {
			if pk == key {
				found = true
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("view ts %d: secondary scan: %w", ts, err)
		}
		if !found {
			return fmt.Errorf("view ts %d: key %d missing from secondary by_balance=%d", ts, key, sec)
		}
		if probes++; probes >= 4 {
			break
		}
	}
	if _, ok, err := v.Get("users", 1<<40); err != nil {
		return fmt.Errorf("view ts %d: absent-key Get: %w", ts, err)
	} else if ok {
		return fmt.Errorf("view ts %d: absent key 1<<40 reported present", ts)
	}
	return nil
}
