// Package nvminp implements the NVM-aware in-place updates engine (NVM-InP,
// §4.1) — the engine the paper finds best overall. Differences from the
// traditional InP engine:
//
//   - The WAL is a non-volatile linked list of entries that record
//     non-volatile *pointers* to tuples (inserts/deletes) and before-images
//     of just the updated fields (updates) — no full after-images, since
//     the referenced data is itself durable on NVM.
//   - Changes are persisted with the allocator interface's sync primitive
//     when they happen; commit is a single atomic durable write of the
//     committed-transaction marker, after which the log is truncated.
//   - Indexes are non-volatile B+trees usable immediately after restart.
//   - Recovery has no redo phase: it only undoes the transactions that were
//     in flight at the crash, so its latency is independent of the number
//     of executed transactions (Fig. 12).
package nvminp

import (
	"fmt"

	"nstore/internal/core"
	"nstore/internal/mvcc"
	"nstore/internal/nvbtree"
	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

const (
	hdrMagic = 0x4e564d494e503131 // "NVMINP11"

	rootSlot = 0

	// Engine header layout.
	hMagic     = 0
	hCommitted = 8
	hWalHead   = 16
	hNTables   = 24
	hAnchors   = 32

	// WAL entry layout (chunk, tagged TagLog).
	wNext  = 0
	wTxn   = 8
	wType  = 16 // core.WalInsert / WalUpdate / WalDelete
	wTable = 17
	wNCols = 18
	wNSec  = 19
	wKey   = 24
	wSlot  = 32
	wData  = 40 // update before-image: nCols x (col u8, value u64), then
	// the secondary repair list: nSec x (idx u8, op u8, composite u64).
	// Undo replays the repair list with absolute, idempotent operations
	// (op 1 = was added, undo deletes; op 2 = was removed, undo re-adds),
	// so a crash anywhere inside an interrupted undo re-converges.
	colRec = 9
	secRec = 10
)

// secFix describes one secondary-index change for idempotent WAL undo.
type secFix struct {
	idx       int
	added     bool
	composite uint64
}

// Engine is the NVM-aware in-place updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	hdr     pmalloc.Ptr
	heaps   []*core.Heap
	primary []*nvbtree.Tree
	second  [][]*nvbtree.Tree

	// Volatile transaction state.
	ops []txnOp
}

type txnOp struct {
	typ     uint8
	table   int
	key     uint64
	slot    uint64
	entry   pmalloc.Ptr
	oldVars []uint64 // var-slots superseded by this update (freed at commit)
	delSlot uint64   // delete: slot reclaimed at commit
}

func (e *Engine) dev() *nvm.Device { return e.Env.Dev }

// anchorsPerTable returns the number of u64 anchors table t needs.
func anchorsPerTable(s *core.Schema) int { return 2 + len(s.Secondary) }

// New creates a fresh NVM-InP engine anchored at arena root slot 0.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	n := 0
	for _, s := range schemas {
		n += anchorsPerTable(s)
	}
	hdr, err := env.Arena.Alloc(hAnchors+8*n, pmalloc.TagOther)
	if err != nil {
		return nil, err
	}
	e.hdr = hdr
	d := e.dev()
	d.WriteU64(int64(hdr)+hMagic, hdrMagic)
	d.WriteU64(int64(hdr)+hCommitted, 0)
	d.WriteU64(int64(hdr)+hWalHead, 0)
	d.WriteU64(int64(hdr)+hNTables, uint64(len(schemas)))

	off := int64(hAnchors)
	for _, tm := range e.Tables {
		h := core.NewHeap(env.Arena, tm.Schema, true)
		e.heaps = append(e.heaps, h)
		d.WriteU64(int64(hdr)+off, h.Header())
		off += 8
		pt, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
		if err != nil {
			return nil, err
		}
		e.primary = append(e.primary, pt)
		d.WriteU64(int64(hdr)+off, pt.Header())
		off += 8
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			d.WriteU64(int64(hdr)+off, st.Header())
			off += 8
		}
		e.second = append(e.second, secs)
	}
	d.Sync(int64(hdr), hAnchors+8*n)
	env.Arena.SetPersisted(hdr)
	env.Arena.SetRoot(rootSlot, hdr)
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// Open recovers the engine after a crash: reopen the non-volatile indexes
// and heaps, undo in-flight transactions via the WAL, and truncate it. No
// redo phase, no index rebuild (§4.1).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()

	hdr := env.Arena.Root(rootSlot)
	if hdr == 0 || env.Dev.ReadU64(int64(hdr)+hMagic) != hdrMagic {
		return nil, fmt.Errorf("nvminp: no engine header")
	}
	e.hdr = hdr
	d := e.dev()
	if int(d.ReadU64(int64(hdr)+hNTables)) != len(schemas) {
		return nil, fmt.Errorf("nvminp: schema mismatch")
	}
	// Open trees first (their journals replay before any allocation), then
	// the heaps.
	off := int64(hAnchors)
	heapHdrs := make([]pmalloc.Ptr, len(e.Tables))
	for _, tm := range e.Tables {
		heapHdrs[tm.ID] = d.ReadU64(int64(hdr) + off)
		off += 8
		pt, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+off))
		if err != nil {
			return nil, err
		}
		e.primary = append(e.primary, pt)
		off += 8
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+off))
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			off += 8
		}
		e.second = append(e.second, secs)
	}
	for _, tm := range e.Tables {
		e.heaps = append(e.heaps, core.OpenHeap(env.Arena, tm.Schema, heapHdrs[tm.ID]))
	}
	if err := e.undoWAL(); err != nil {
		return nil, err
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// undoWAL removes the effects of the transactions in flight at the crash
// (newest entry first — the list head is the most recent append).
func (e *Engine) undoWAL() error {
	d := e.dev()
	head := d.ReadU64(int64(e.hdr) + hWalHead)
	var frees []pmalloc.Ptr
	for p := head; p != 0; p = d.ReadU64(int64(p) + wNext) {
		frees = append(frees, p)
		// Truncation is the commit point: any entry still linked belongs to
		// an uncommitted transaction.
		if err := e.undoEntry(p); err != nil {
			return err
		}
	}
	// Truncate: head reset is the atomic point; chunk frees follow.
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, p := range frees {
		if e.Env.Arena.StateOf(p) != pmalloc.StateFree {
			e.Env.Arena.Free(p)
		}
	}
	// Sweep WAL-tagged chunks orphaned by a crash between the commit
	// marker and the chunk frees. The chunk directory is collected on the
	// owner goroutine (the device data path is single-owner); the three-state
	// classification of the stripes is pure host-memory work and fans out,
	// then the frees happen serially.
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	type chunkRec struct {
		p   pmalloc.Ptr
		tag pmalloc.Tag
		st  pmalloc.State
	}
	var chunks []chunkRec
	e.Env.Arena.Chunks(func(p pmalloc.Ptr, size int, tag pmalloc.Tag, st pmalloc.State) {
		chunks = append(chunks, chunkRec{p: p, tag: tag, st: st})
	})
	orphans := make([][]pmalloc.Ptr, workers)
	_ = core.ParallelChunks(workers, len(chunks), func(w, lo, hi int) error {
		for _, c := range chunks[lo:hi] {
			if c.tag == pmalloc.TagLog && c.st == pmalloc.StatePersisted {
				orphans[w] = append(orphans[w], c.p)
			}
		}
		return nil
	})
	for _, list := range orphans {
		for _, p := range list {
			e.Env.Arena.Free(p)
		}
	}
	e.Rec = core.RecoveryReport{Records: int64(len(frees) + len(chunks)), Workers: workers}
	return nil
}

// undoEntry reverses one WAL entry's operation.
func (e *Engine) undoEntry(p pmalloc.Ptr) error {
	d := e.dev()
	typ := d.ReadU8(int64(p) + wType)
	table := int(d.ReadU8(int64(p) + wTable))
	key := d.ReadU64(int64(p) + wKey)
	slot := d.ReadU64(int64(p) + wSlot)
	tm := e.Tables[table]
	h := e.heaps[table]

	switch typ {
	case core.WalInsert:
		// Release the tuple's storage using the pointer recorded in the WAL
		// entry, and drop its index entries.
		if h.State(slot) != core.SlotFree {
			row := h.ReadRow(slot)
			if _, err := e.primary[table].Delete(key); err != nil {
				return err
			}
			for j, ix := range tm.Schema.Secondary {
				if _, err := e.second[table][j].Delete(core.SecComposite(ix.SecKey(row), key)); err != nil {
					return err
				}
			}
			h.FreeSlot(slot)
		}
	case core.WalUpdate:
		if h.State(slot) == core.SlotFree {
			return nil
		}
		n := int(d.ReadU8(int64(p) + wNCols))
		for i := 0; i < n; i++ {
			base := int64(p) + wData + int64(i)*colRec
			ci := int(d.ReadU8(base))
			val := d.ReadU64(base + 1)
			if tm.Schema.Columns[ci].Type == core.TInt {
				h.WriteCol(slot, ci, core.Value{I: int64(val)})
			} else {
				// Free the new var-slot and restore the old pointer.
				cur := h.ColVarPtr(slot, ci)
				if cur != 0 && cur != val {
					h.FreeVar(cur)
				}
				e.restoreVarPtr(slot, ci, val)
			}
		}
		h.SyncTuple(slot)
		// Replay the logged secondary repair list: absolute, idempotent
		// operations, safe to re-run if a crash interrupts this undo.
		nSec := int(d.ReadU8(int64(p) + wNSec))
		secBase := int64(p) + wData + int64(n)*colRec
		for i := 0; i < nSec; i++ {
			base := secBase + int64(i)*secRec
			idx := int(d.ReadU8(base))
			op := d.ReadU8(base + 1)
			composite := d.ReadU64(base + 2)
			if op == 1 {
				if _, err := e.second[table][idx].Delete(composite); err != nil {
					return err
				}
			} else {
				if err := e.second[table][idx].Put(composite, core.SecPK(composite)); err != nil {
					return err
				}
			}
		}
	case core.WalDelete:
		// The tuple slot was only logically discarded; re-link the indexes.
		if h.State(slot) == core.SlotFree {
			return nil
		}
		row := h.ReadRow(slot)
		if err := e.primary[table].Put(key, slot); err != nil {
			return err
		}
		for j, ix := range tm.Schema.Secondary {
			if err := e.second[table][j].Put(core.SecComposite(ix.SecKey(row), key), key); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreVarPtr writes a raw var-slot pointer back into a string field.
func (e *Engine) restoreVarPtr(slot uint64, col int, vp uint64) {
	e.dev().WriteU64(int64(slot)+16+int64(col*8), vp)
}

// appendWAL builds a WAL entry chunk, syncs it, and links it with an atomic
// durable head update.
func (e *Engine) appendWAL(typ uint8, table int, key, slot uint64, befCols []int, befVals []uint64, fixes []secFix) (pmalloc.Ptr, error) {
	d := e.dev()
	size := wData + colRec*len(befCols) + secRec*len(fixes)
	p, err := e.Env.Arena.Alloc(size, pmalloc.TagLog)
	if err != nil {
		// Log-arena exhaustion is reachable from normal traffic: surface it
		// instead of panicking; the transaction can be aborted cleanly.
		return 0, err
	}
	d.WriteU64(int64(p)+wNext, d.ReadU64(int64(e.hdr)+hWalHead))
	d.WriteU64(int64(p)+wTxn, e.TxnID)
	d.WriteU8(int64(p)+wType, typ)
	d.WriteU8(int64(p)+wTable, uint8(table))
	d.WriteU8(int64(p)+wNCols, uint8(len(befCols)))
	d.WriteU8(int64(p)+wNSec, uint8(len(fixes)))
	d.WriteU64(int64(p)+wKey, key)
	d.WriteU64(int64(p)+wSlot, slot)
	for i, ci := range befCols {
		base := int64(p) + wData + int64(i)*colRec
		d.WriteU8(base, uint8(ci))
		d.WriteU64(base+1, befVals[i])
	}
	secBase := int64(p) + wData + int64(len(befCols))*colRec
	for i, f := range fixes {
		base := secBase + int64(i)*secRec
		d.WriteU8(base, uint8(f.idx))
		op := uint8(2)
		if f.added {
			op = 1
		}
		d.WriteU8(base+1, op)
		d.WriteU64(base+2, f.composite)
	}
	d.Sync(int64(p), size)
	e.Env.Arena.SetPersisted(p)
	d.WriteU64Durable(int64(e.hdr)+hWalHead, p)
	return p, nil
}

// Name returns "nvm-inp".
func (e *Engine) Name() string { return "nvm-inp" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.ops = e.ops[:0]
	return nil
}

// Commit truncates the WAL with one atomic durable write — since the WAL is
// undo-only and every change was persisted as it happened, an empty WAL *is*
// the committed state — then reclaims space owed by deletes and updates
// (Table 2: "Reclaim space at the end of transaction").
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	d := e.dev()
	// The atomic commit point: after this, recovery has nothing to undo.
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		for _, vp := range op.oldVars {
			e.heaps[op.table].FreeVar(vp)
		}
		if op.typ == core.WalDelete {
			e.heaps[op.table].FreeSlot(op.delSlot)
		}
		if op.entry != 0 {
			e.Env.Arena.Free(op.entry)
		}
	}
	// The WAL truncation above is the durability barrier: versions publish
	// to snapshot readers immediately (NVM-InP is durable at commit).
	e.MV.CommitStaged(e.TxnID, true)
	return e.EndTx()
}

// Abort undoes the transaction using the in-memory op list (equivalently
// the WAL), then truncates the log.
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	for i := len(e.ops) - 1; i >= 0; i-- {
		if err := e.undoEntry(e.ops[i].entry); err != nil {
			// A failed rollback leaves volatile and durable state diverged;
			// only the engine's crash-recovery path can restore consistency.
			// The transaction is over either way — end it so recovery's
			// replacement Begin path is not blocked by ErrInTxn.
			_ = e.EndTx()
			return core.Corrupt(err)
		}
	}
	d := e.dev()
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		if op.entry != 0 {
			e.Env.Arena.Free(op.entry)
		}
	}
	e.MV.DropStaged()
	return e.EndTx()
}

// Insert adds a tuple per Table 2: sync tuple, record its pointer in the
// WAL, sync the entry, mark the slot persisted, add the index entries.
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	_, exists := e.primary[tm.ID].Get(key)
	stopIdx()
	if exists {
		return core.ErrKeyExists
	}
	h := e.heaps[tm.ID]

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	slot := h.AllocSlot(key)
	h.WriteRow(slot, row)
	h.SyncTuple(slot)
	stopSt()

	stopRec := e.Bd.Timer(&e.Bd.Recovery)
	entry, err := e.appendWAL(core.WalInsert, tm.ID, key, slot, nil, nil, nil)
	stopRec()
	if err != nil {
		h.FreeSlot(slot)
		return err
	}
	// Record the op before touching the indexes so Abort can undo a
	// partially applied insert if an index update fails below.
	e.ops = append(e.ops, txnOp{typ: core.WalInsert, table: tm.ID, key: key, slot: slot, entry: entry})

	stopSt = e.Bd.Timer(&e.Bd.Storage)
	h.PersistSlot(slot)
	stopSt()

	stopIdx = e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	if err := e.primary[tm.ID].Put(key, slot); err != nil {
		return err
	}
	for j, ix := range tm.Schema.Secondary {
		if err := e.second[tm.ID][j].Put(core.SecComposite(ix.SecKey(row), key), key); err != nil {
			return err
		}
	}
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update records the before-image (field values / var-slot pointers) in the
// WAL, then modifies the tuple in place and syncs the changes.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return core.ErrKeyNotFound
	}
	h := e.heaps[tm.ID]
	old := h.ReadRow(slot)

	befCols := make([]int, len(upd.Cols))
	befVals := make([]uint64, len(upd.Cols))
	var oldVars []uint64
	for j, ci := range upd.Cols {
		befCols[j] = ci
		if tm.Schema.Columns[ci].Type == core.TInt {
			befVals[j] = uint64(old[ci].I)
		} else {
			vp := h.ColVarPtr(slot, ci)
			befVals[j] = vp
			oldVars = append(oldVars, vp)
		}
	}

	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			fixes = append(fixes,
				secFix{idx: j, added: true, composite: core.SecComposite(nk, key)},
				secFix{idx: j, added: false, composite: core.SecComposite(ok, key)})
		}
	}

	stopRec := e.Bd.Timer(&e.Bd.Recovery)
	entry, err := e.appendWAL(core.WalUpdate, tm.ID, key, slot, befCols, befVals, fixes)
	stopRec()
	if err != nil {
		return err
	}
	// Record the op before modifying anything so Abort can undo a
	// partially applied update from the WAL entry's before-image.
	e.ops = append(e.ops, txnOp{typ: core.WalUpdate, table: tm.ID, key: key,
		slot: slot, entry: entry, oldVars: oldVars})

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	for j, ci := range upd.Cols {
		h.WriteCol(slot, ci, upd.Vals[j])
	}
	h.SyncTuple(slot)
	h.PersistSlot(slot) // re-persist new var-slots
	stopSt()

	stopIdx = e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for _, f := range fixes {
		if f.added {
			if err := e.second[tm.ID][f.idx].Put(f.composite, core.SecPK(f.composite)); err != nil {
				return err
			}
		} else {
			if _, err := e.second[tm.ID][f.idx].Delete(f.composite); err != nil {
				return err
			}
		}
	}
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete logs the tuple pointer, discards the index entries, and reclaims
// the slot at commit (Table 2).
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return core.ErrKeyNotFound
	}
	h := e.heaps[tm.ID]
	row := h.ReadRow(slot)

	stopRec := e.Bd.Timer(&e.Bd.Recovery)
	entry, err := e.appendWAL(core.WalDelete, tm.ID, key, slot, nil, nil, nil)
	stopRec()
	if err != nil {
		return err
	}
	// Record the op first so Abort re-links the indexes if a removal below
	// fails partway.
	e.ops = append(e.ops, txnOp{typ: core.WalDelete, table: tm.ID, key: key,
		slot: slot, entry: entry, delSlot: slot})

	stopIdx = e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	if _, err := e.primary[tm.ID].Delete(key); err != nil {
		return err
	}
	for j, ix := range tm.Schema.Secondary {
		if _, err := e.second[tm.ID][j].Delete(core.SecComposite(ix.SecKey(row), key)); err != nil {
			return err
		}
	}
	e.MV.StageDelete(table, key)
	return nil
}

// Get reads a tuple through the non-volatile primary index.
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return nil, false, nil
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	row := e.heaps[tm.ID].ReadRow(slot)
	stopSt()
	return row, true, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("nvminp: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange iterates rows with primary key in [from, to).
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	h := e.heaps[tm.ID]
	e.primary[tm.ID].Iter(from, func(k, slot uint64) bool {
		if k >= to {
			return false
		}
		return fn(k, h.ReadRow(slot))
	})
	return nil
}

// Flush is a no-op: every commit is immediately durable.
func (e *Engine) Flush() error { return nil }

// Footprint reports storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	u := e.Env.Arena.Usage()
	return core.Footprint{
		Table: u[pmalloc.TagTable],
		Index: u[pmalloc.TagIndex],
		Log:   u[pmalloc.TagLog],
		Other: u[pmalloc.TagOther],
	}
}
