package nvminp

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "nvm-inp",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	})
}

func simpleSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: 100},
		},
	}}
}

// TestImmediateDurability: NVM-InP commits are durable with no Flush.
func TestImmediateDurability(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, err := New(env, simpleSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Begin()
	e.Insert("t", 1, []core.Value{core.IntVal(1), core.IntVal(2), core.StrVal("x")})
	e.Commit()
	// No Flush — crash immediately.
	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, simpleSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	row, ok, _ := e2.Get("t", 1)
	if !ok || row[1].I != 2 {
		t.Fatalf("commit not durable without group flush: %v,%v", row, ok)
	}
}

// TestNoRedoOnRecovery: after a clean crash with nothing in flight, the WAL
// is empty — recovery has nothing to replay regardless of history length.
func TestNoRedoOnRecovery(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	e, _ := New(env, simpleSchema(), core.Options{})
	for i := int64(1); i <= 2000; i++ {
		e.Begin()
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.IntVal(i), core.StrVal("payload")})
		e.Commit()
	}
	env.Dev.Crash()
	env2, _ := env.Reopen()
	before := env2.Dev.Stats()
	e2, err := Open(env2, simpleSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := env2.Dev.Stats().Sub(before)
	// Opening must not scale with the 2000 executed txns: no checkpoint
	// load, no WAL replay, no index rebuild. The heap open scans block
	// headers (bounded by live data), so just assert reads stay far below
	// one-pass-over-all-tuple-content territory AND the engine works.
	if _, ok, _ := e2.Get("t", 1500); !ok {
		t.Fatal("data missing after instant recovery")
	}
	if diff.Stores > 2000 {
		t.Errorf("recovery performed %d NVM stores; expected near-zero write work", diff.Stores)
	}
}

// TestWALRecordsPointersNotData: the WAL footprint per insert is tiny
// compared to the tuple, since only pointers are logged (§4.1).
func TestWALRecordsPointersNotData(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, _ := New(env, simpleSchema(), core.Options{})
	e.Begin()
	big := make([]byte, 4000)
	e.Insert("t", 1, []core.Value{core.IntVal(1), core.IntVal(2), core.BytesVal(big)})
	fp := e.Footprint()
	if fp.Log > 256 {
		t.Errorf("WAL holds %d bytes for one insert of a 4 KB tuple; should be pointer-sized", fp.Log)
	}
	e.Commit()
	if got := e.Footprint().Log; got != 0 {
		t.Errorf("WAL not truncated at commit: %d bytes", got)
	}
}

// TestRecoveryLatencyIndependentOfHistory measures Fig. 12's key property.
func TestRecoveryLatencyIndependentOfHistory(t *testing.T) {
	// Fixed database size; vary only the number of executed transactions.
	// InP/Log must replay them all; NVM-InP's recovery work must not grow.
	measure := func(txns int) int64 {
		env := core.NewEnv(core.EnvConfig{DeviceSize: 512 << 20})
		e, _ := New(env, simpleSchema(), core.Options{})
		e.Begin()
		for i := 1; i <= 2000; i++ {
			e.Insert("t", uint64(i), []core.Value{core.IntVal(int64(i)), core.IntVal(1), core.StrVal("row")})
		}
		e.Commit()
		for i := 1; i <= txns; i++ {
			e.Begin()
			e.Update("t", uint64(i%2000)+1, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(int64(i))}})
			e.Commit()
		}
		env.Dev.Crash()
		env2, _ := env.Reopen()
		before := env2.Dev.Stats()
		if _, err := Open(env2, simpleSchema(), core.Options{}); err != nil {
			t.Fatal(err)
		}
		d := env2.Dev.Stats().Sub(before)
		return int64(d.Loads)
	}
	small := measure(500)
	large := measure(5000)
	if large > small*3/2 {
		t.Errorf("recovery loads grew %d -> %d with 10x the transactions; not history-independent", small, large)
	}
}

// TestVarSlotReclaimedOnUpdateCommit checks Table 2's space reclamation.
func TestVarSlotReclaimedOnUpdateCommit(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, _ := New(env, simpleSchema(), core.Options{})
	e.Begin()
	e.Insert("t", 1, []core.Value{core.IntVal(1), core.IntVal(2), core.BytesVal(make([]byte, 1000))})
	e.Commit()
	stable := e.Environment().Arena.Allocated()
	for i := 0; i < 50; i++ {
		e.Begin()
		e.Update("t", 1, core.Update{Cols: []int{2}, Vals: []core.Value{core.BytesVal(make([]byte, 1000))}})
		e.Commit()
	}
	after := e.Environment().Arena.Allocated()
	if after > stable+2048 {
		t.Errorf("allocator grew %d -> %d over 50 same-size updates; old var-slots leak", stable, after)
	}
}

func TestCrashInjection(t *testing.T) {
	enginetest.RunCrashInjection(t, enginetest.Factory{
		Name: "nvminp",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}, 25)
}

func confFactory() enginetest.Factory {
	return enginetest.Factory{
		Name: "nvminp",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, confFactory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, confFactory(), 200)
}

// TestConformanceCatchesMissingFence is the harness's self-test: an engine
// whose commit-path SFENCE has been removed (fences become no-ops during
// the workload, restored for recovery) must make the battery report a
// failure. If this test ever passes vacuously, the conformance suite has
// lost its teeth.
func TestConformanceCatchesMissingFence(t *testing.T) {
	broken := enginetest.Factory{
		Name: "nvminp-nofence",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			e, err := New(env, schemas, opts)
			if err == nil {
				env.Dev.SetFenceNoop(true)
			}
			return e, err
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			env.Dev.SetFenceNoop(false)
			return Open(env, schemas, opts)
		},
	}
	err := enginetest.CheckRecoveryConformance(broken, 12, enginetest.BaseSeed())
	if err == nil {
		t.Fatal("conformance battery did not catch an engine whose commit fence was removed")
	}
	t.Logf("caught as expected: %v", err)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, confFactory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, confFactory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, confFactory(), 200)
}

// TestEmptyTableSurvivesCrash pins a recovery edge the cross-shard battery
// found: a table that is created and NEVER written (the usual state of the
// hidden 2PC bookkeeping tables) must still be scannable after a power cut.
// nvbtree.Create used to leave the empty root's flag/count lines unfenced —
// the header survived the crash but pointed at a zeroed node that read back
// as an inner node with no children.
func TestEmptyTableSurvivesCrash(t *testing.T) {
	schemas := append(simpleSchema(), &core.Schema{
		Name:    "empty",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TInt}},
	})
	env := core.NewEnv(core.EnvConfig{DeviceSize: 32 << 20})
	if _, err := New(env, schemas, core.Options{GroupCommitSize: 1}); err != nil {
		t.Fatal(err)
	}
	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, schemas, core.Options{GroupCommitSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemas {
		n := 0
		if err := e2.ScanRange(s.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("%s: %d phantom rows in a never-written table", s.Name, n)
		}
	}
}
