// Package nvmcow implements the NVM-aware copy-on-write updates engine
// (NVM-CoW, §4.2). Differences from the traditional CoW engine:
//
//   - The copy-on-write B+tree is non-volatile and maintained with the
//     allocator interface; there is no filesystem, no kernel crossing.
//   - Tuples are persisted directly as allocator chunks with the sync
//     primitive; the directories store only non-volatile tuple pointers,
//     avoiding the CoW engine's tuple transformation and copying costs.
//   - The master record is updated with an atomic durable write.
//
// Like the CoW engine it has no recovery process: after a restart the
// master record already points to a consistent current directory, and the
// storage consumed by the lost dirty directory (pages and tuple copies) is
// reclaimed by a reachability sweep over the allocator.
package nvmcow

import (
	"encoding/binary"
	"fmt"

	"nstore/internal/core"
	"nstore/internal/cowbtree"
	"nstore/internal/mvcc"
	"nstore/internal/pmalloc"
)

const rootSlot = 0

// Engine is the NVM-aware copy-on-write updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	pager *cowbtree.ArenaPager
	tree  *cowbtree.Tree

	sinceGroup  int
	txnNew      []pmalloc.Ptr // tuple copies made by the running txn
	txnOld      []pmalloc.Ptr // tuples superseded by the running txn
	pendingFree []pmalloc.Ptr // superseded tuples, freed after next Persist
}

// New creates a fresh NVM-CoW engine anchored at arena root slot 0.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	pg, err := cowbtree.CreateArenaPager(env.Arena, rootSlot, e.opts.CowPageSize)
	if err != nil {
		return nil, err
	}
	tr, err := cowbtree.Create(pg)
	if err != nil {
		return nil, err
	}
	e.pager, e.tree = pg, tr
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// Open re-attaches after a restart: read the master record, then sweep the
// allocator for pages and tuple copies orphaned by the crash (the paper's
// asynchronous reclamation, done inline here).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	pg, err := cowbtree.OpenArenaPager(env.Arena, rootSlot, e.opts.CowPageSize)
	if err != nil {
		return nil, err
	}
	tr := cowbtree.Attach(pg)
	e.pager, e.tree = pg, tr
	e.TxnID = tr.Meta()

	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	reach := make(map[uint64]bool)
	tr.ReachableParallel(workers, func(id uint64) { reach[id] = true }, func(v []byte) {
		if len(v) == 8 {
			reach[binary.LittleEndian.Uint64(v)] = true
		}
	})

	// Collect the allocator's chunk directory on the owner goroutine (the
	// device data path is single-owner), classify the stripes in parallel
	// against the host-memory reach set, then free serially.
	type chunkRec struct {
		p   pmalloc.Ptr
		tag pmalloc.Tag
		st  pmalloc.State
	}
	var chunks []chunkRec
	env.Arena.Chunks(func(p pmalloc.Ptr, size int, tag pmalloc.Tag, st pmalloc.State) {
		chunks = append(chunks, chunkRec{p: p, tag: tag, st: st})
	})
	orphans := make([][]pmalloc.Ptr, workers)
	_ = core.ParallelChunks(workers, len(chunks), func(w, lo, hi int) error {
		for _, c := range chunks[lo:hi] {
			if c.tag == pmalloc.TagTable && c.st == pmalloc.StatePersisted && !reach[c.p] {
				orphans[w] = append(orphans[w], c.p)
			}
		}
		return nil
	})
	for _, list := range orphans {
		for _, p := range list {
			env.Arena.Free(p)
		}
	}
	e.Rec = core.RecoveryReport{Records: int64(len(reach) + len(chunks)), Workers: workers}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// writeTuple persists a tuple image as an allocator chunk (Table 2: "Sync
// tuple with NVM ... update tuple state as persisted").
func (e *Engine) writeTuple(img []byte) (pmalloc.Ptr, error) {
	p, err := e.Env.Arena.Alloc(4+len(img), pmalloc.TagTable)
	if err != nil {
		// Table-arena exhaustion is reachable from normal inserts/updates:
		// return it so the transaction can abort cleanly.
		return 0, err
	}
	d := e.Env.Dev
	d.WriteU32(int64(p), uint32(len(img)))
	d.Write(int64(p)+4, img)
	d.Sync(int64(p), 4+len(img))
	e.Env.Arena.SetPersisted(p)
	return p, nil
}

func (e *Engine) readTuple(p pmalloc.Ptr) []byte {
	d := e.Env.Dev
	n := int(d.ReadU32(int64(p)))
	img := make([]byte, n)
	d.Read(int64(p)+4, img)
	return img
}

func ptrBytes(p pmalloc.Ptr) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], p)
	return b[:]
}

// Name returns "nvm-cow".
func (e *Engine) Name() string { return "nvm-cow" }

// Begin starts a transaction against the dirty directory.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.tree.Begin()
	e.txnNew = e.txnNew[:0]
	e.txnOld = e.txnOld[:0]
	return nil
}

// Commit keeps the transaction in the dirty directory; a full group
// persists the batch with an atomic master-record update.
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.tree.SetMeta(e.TxnID)
	e.tree.Commit()
	e.pendingFree = append(e.pendingFree, e.txnOld...)
	e.txnOld = e.txnOld[:0]
	e.sinceGroup++
	var err error
	if e.sinceGroup >= e.opts.GroupCommitSize {
		err = e.persist()
	}
	stop()
	if err != nil {
		// The txn is already folded into the volatile batch; only reopening
		// from the last durable master record restores a known state. End
		// the transaction so the next Begin does not trip over ErrInTxn.
		_ = e.EndTx()
		return core.Corrupt(err)
	}
	// sinceGroup == 0 means this commit persisted the whole batch — the
	// durability barrier passed and versions may publish to readers.
	e.MV.CommitStaged(e.TxnID, e.sinceGroup == 0)
	return e.EndTx()
}

func (e *Engine) persist() error {
	e.sinceGroup = 0
	if err := e.tree.Persist(); err != nil {
		return err
	}
	// Tuples superseded by the batch are unreferenced now that the swap is
	// durable.
	for _, p := range e.pendingFree {
		if e.Env.Arena.StateOf(p) != pmalloc.StateFree {
			e.Env.Arena.Free(p)
		}
	}
	e.pendingFree = e.pendingFree[:0]
	return nil
}

// Abort discards the transaction: its directory pages and tuple copies are
// released immediately ("Recover tuple space immediately", Table 2).
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	e.tree.Abort()
	for _, p := range e.txnNew {
		if e.Env.Arena.StateOf(p) != pmalloc.StateFree {
			e.Env.Arena.Free(p)
		}
	}
	e.txnNew = e.txnNew[:0]
	e.txnOld = e.txnOld[:0]
	e.MV.DropStaged()
	return e.EndTx()
}

// Insert persists the tuple and stores its pointer in the dirty directory.
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	_, exists := e.tree.Get(tk)
	stopIdx()
	if exists {
		return core.ErrKeyExists
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	p, err := e.writeTuple(core.EncodeRow(tm.Schema, row))
	if err != nil {
		stopSt()
		return err
	}
	e.txnNew = append(e.txnNew, p)
	err = e.tree.Put(tk, ptrBytes(p))
	stopSt()
	if err != nil {
		return err
	}
	stopIdx = e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		if err := e.tree.Put(core.TreeSecondary(tm.ID, j, ix.SecKey(row), key), nil); err != nil {
			return err
		}
	}
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update makes a copy of the tuple, applies the changes to the copy, syncs
// it, and stores only the new pointer in the dirty directory (Table 2).
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	v, ok := e.tree.Get(tk)
	stopSt()
	if !ok || len(v) != 8 {
		return core.ErrKeyNotFound
	}
	oldPtr := binary.LittleEndian.Uint64(v)
	old, err := core.DecodeRow(tm.Schema, e.readTuple(oldPtr))
	if err != nil {
		return err
	}
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)

	stopSt = e.Bd.Timer(&e.Bd.Storage)
	p, err := e.writeTuple(core.EncodeRow(tm.Schema, now))
	if err != nil {
		stopSt()
		return err
	}
	e.txnNew = append(e.txnNew, p)
	e.txnOld = append(e.txnOld, oldPtr)
	err = e.tree.Put(tk, ptrBytes(p))
	stopSt()
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			if _, err := e.tree.Delete(core.TreeSecondary(tm.ID, j, ok, key)); err != nil {
				return err
			}
			if err := e.tree.Put(core.TreeSecondary(tm.ID, j, nk, key), nil); err != nil {
				return err
			}
		}
	}
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete removes the pointer from the dirty directory; the tuple chunk is
// reclaimed once the batch persists.
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	tk := core.TreePrimary(tm.ID, key)
	v, ok := e.tree.Get(tk)
	if !ok || len(v) != 8 {
		return core.ErrKeyNotFound
	}
	oldPtr := binary.LittleEndian.Uint64(v)
	old, err := core.DecodeRow(tm.Schema, e.readTuple(oldPtr))
	if err != nil {
		return err
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if _, err := e.tree.Delete(tk); err != nil {
		return err
	}
	e.txnOld = append(e.txnOld, oldPtr)
	stopSt()
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	for j, ix := range tm.Schema.Secondary {
		if _, err := e.tree.Delete(core.TreeSecondary(tm.ID, j, ix.SecKey(old), key)); err != nil {
			return err
		}
	}
	e.MV.StageDelete(table, key)
	return nil
}

// Get locates the tuple pointer in the appropriate directory and fetches
// the contents (Table 2).
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	v, ok := e.tree.Get(core.TreePrimary(tm.ID, key))
	stopSt()
	if !ok || len(v) != 8 {
		return nil, false, nil
	}
	row, err := core.DecodeRow(tm.Schema, e.readTuple(binary.LittleEndian.Uint64(v)))
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("nvmcow: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.TreeSecRange(tm.ID, j, sec)
	e.tree.Iter(lo, func(k uint64, v []byte) bool {
		if k >= hi {
			return false
		}
		return fn(core.TreeSecPK(k))
	})
	return nil
}

// ScanRange iterates a table's tuples with pk in [from, to).
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	var derr error
	e.tree.Iter(lo, func(k uint64, v []byte) bool {
		if k >= hi {
			return false
		}
		if len(v) != 8 {
			return true
		}
		row, err := core.DecodeRow(tm.Schema, e.readTuple(binary.LittleEndian.Uint64(v)))
		if err != nil {
			derr = err
			return false
		}
		return fn(core.TreePK(k), row)
	})
	return derr
}

// Flush persists any batched transactions.
func (e *Engine) Flush() error {
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := e.persist(); err != nil {
		return err
	}
	e.MV.PublishDurable()
	return nil
}

// Footprint reports storage usage (Fig. 14): directory pages and tuples
// both live in allocator chunks tagged as table storage.
func (e *Engine) Footprint() core.Footprint {
	u := e.Env.Arena.Usage()
	return core.Footprint{
		Table: u[pmalloc.TagTable],
		Index: u[pmalloc.TagIndex],
		Other: u[pmalloc.TagOther],
	}
}
