package nvmcow

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/pmalloc"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "nvm-cow",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	})
}

func simpleSchema() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "v", Type: core.TString, Size: 200},
		},
	}}
}

// TestSweepReclaimsLostDirtyDirectory: pages and tuple copies of an
// uncommitted batch must be reclaimed by the open-time sweep.
func TestSweepReclaimsLostDirtyDirectory(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	// A large group size keeps the second batch un-persisted until the crash.
	e, err := New(env, simpleSchema(), core.Options{GroupCommitSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 64; i++ {
		e.Begin()
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.BytesVal(make([]byte, 150))})
		e.Commit()
	}
	e.Flush()
	base := env.Arena.Allocated()

	// Build a dirty directory that will be lost, with everything evicted to
	// the medium so the orphaned chunks are really there after the crash.
	for i := int64(100); i <= 140; i++ {
		e.Begin()
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.BytesVal(make([]byte, 150))})
		e.Commit()
		if i == 139 {
			break
		}
	}
	env.Dev.EvictAll()
	env.Dev.Crash()

	env2, err := env.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, simpleSchema(), core.Options{GroupCommitSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e2.Get("t", 120); ok {
		t.Error("unpersisted batch visible after crash")
	}
	// The sweep must bring usage back near the persisted baseline.
	if got := env2.Arena.Allocated(); got > base+base/4 {
		t.Errorf("allocated %d after sweep, baseline %d; dirty directory leaked", got, base)
	}
	// And the engine is fully usable.
	e2.Begin()
	if err := e2.Insert("t", 500, []core.Value{core.IntVal(500), core.StrVal("post-recovery")}); err != nil {
		t.Fatal(err)
	}
	e2.Commit()
	e2.Flush()
}

// TestNoTupleCopyInDirectory: directory values are 8-byte pointers, so page
// churn per update is much lower than the CoW engine's inlined tuples.
func TestNoTupleCopyInDirectory(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, _ := New(env, simpleSchema(), core.Options{GroupCommitSize: 1})
	e.Begin()
	for i := int64(1); i <= 100; i++ {
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.BytesVal(make([]byte, 180))})
	}
	e.Commit()
	e.Flush()
	// One update: the logical write is one ~190-byte tuple copy plus one
	// page-path copy. With inlined tuples the leaf path alone would carry
	// every neighbouring tuple's bytes.
	before := env.Dev.Stats()
	e.Begin()
	e.Update("t", 50, core.Update{Cols: []int{1}, Vals: []core.Value{core.BytesVal(make([]byte, 180))}})
	e.Commit()
	e.Flush()
	d := env.Dev.Stats().Sub(before)
	if d.BytesWritten > 64<<10 {
		t.Errorf("one pointer update wrote %d bytes", d.BytesWritten)
	}
}

// TestTupleSpaceReclaimedAfterPersist: superseded tuple chunks are freed
// once the batch is durable, so steady-state updates do not grow the arena.
func TestTupleSpaceReclaimedAfterPersist(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 128 << 20})
	e, _ := New(env, simpleSchema(), core.Options{GroupCommitSize: 8})
	e.Begin()
	for i := int64(1); i <= 200; i++ {
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.BytesVal(make([]byte, 100))})
	}
	e.Commit()
	e.Flush()
	base := env.Arena.Allocated()
	for round := 0; round < 20; round++ {
		for i := int64(1); i <= 40; i++ {
			e.Begin()
			e.Update("t", uint64(i), core.Update{Cols: []int{1}, Vals: []core.Value{core.BytesVal(make([]byte, 100))}})
			e.Commit()
		}
		e.Flush()
	}
	after := env.Arena.Allocated()
	if after > base*2 {
		t.Errorf("arena grew %d -> %d over steady-state updates; tuple chunks leak", base, after)
	}
	// Check the master chunk tracking too.
	if st := env.Arena.StateOf(env.Arena.Root(0)); st != pmalloc.StatePersisted {
		t.Errorf("master block state = %v", st)
	}
}

func TestCrashInjection(t *testing.T) {
	enginetest.RunCrashInjection(t, enginetest.Factory{
		Name: "nvmcow",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}, 25)
}

func confFactory() enginetest.Factory {
	return enginetest.Factory{
		Name: "nvm-cow",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, confFactory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, confFactory(), 200)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, confFactory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, confFactory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, confFactory(), 200)
}
