// Package inp implements the in-place updates engine (InP, §3.1), modelled
// on VoltDB: a single version of each tuple, updated in place, with an
// ARIES-style write-ahead log on the filesystem interface and periodic
// gzip-compressed checkpoints. Tuple storage and the STX-style B+tree
// indexes live in memory obtained from the allocator interface but are
// treated as volatile: after a crash the engine reloads the last checkpoint,
// replays the WAL, and rebuilds all indexes (§3.1).
package inp

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"nstore/internal/btree"
	"nstore/internal/core"
	"nstore/internal/mvcc"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

const (
	walFile = "inp.wal"
	// Checkpoints alternate between two slot files: the writer never touches
	// the newest valid checkpoint, so a crash anywhere mid-write (including a
	// torn fsync) costs at most the in-progress slot. This replaces a
	// tmp-file + rename swap, which is not crash-atomic on pmfs.
	ckptSlotA = "inp.ckpt.0"
	ckptSlotB = "inp.ckpt.1"

	ckptMagic   = 0x4e53434b50543031 // "NSCKPT01"
	ckptHdrSize = 40                 // magic, seq, txn floor, payload len (u64) + payload crc (u32) + pad
)

// ckptCRC is the checksum polynomial for checkpoint slot validation.
var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// Engine is the in-place updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	heaps   []*core.Heap  // per table
	primary []*btree.Tree // per table: pk -> slot ptr
	second  [][]*btree.Tree

	wal *core.FsWAL

	walMark     int // buffer mark at txn begin, for abort
	undo        []undoRec
	sinceCkpt   int
	ckptSeq     uint64
	ckptTxn     uint64 // highest TxnID covered by the loaded/written checkpoint
	ckptDurable int64  // durable checkpoint size (Fig. 14)
}

type undoRec struct {
	op     uint8 // core.WalInsert etc.
	table  int
	key    uint64
	before []core.Value // update/delete
}

// New creates a fresh InP engine on the partition environment.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	wal, err := core.NewFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
	if err != nil {
		return nil, err
	}
	if err := wal.UseArenaBuffer(env.Arena); err != nil {
		return nil, err
	}
	e.wal = wal
	e.buildVolatile()
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// buildVolatile creates the heaps and indexes in (volatile) allocator
// memory.
func (e *Engine) buildVolatile() {
	e.heaps = nil
	e.primary = nil
	e.second = nil
	for _, tm := range e.Tables {
		e.heaps = append(e.heaps, core.NewHeap(e.Env.Arena, tm.Schema, false))
		e.primary = append(e.primary, btree.New(e.Env.Arena, e.opts.BTreeNodeSize))
		var secs []*btree.Tree
		for range tm.Schema.Secondary {
			secs = append(secs, btree.New(e.Env.Arena, e.opts.BTreeNodeSize))
		}
		e.second = append(e.second, secs)
	}
}

// Open recovers an InP engine after a restart: load the last checkpoint,
// replay the WAL, and rebuild the indexes. The allocator memory is treated
// as volatile, so the caller must pass a freshly formatted arena.
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()

	e.buildVolatile()
	if err := e.loadCheckpoint(); err != nil {
		return nil, fmt.Errorf("inp: checkpoint load: %w", err)
	}
	wal, err := core.OpenFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
	if err != nil {
		if err != pmfs.ErrNotExist {
			return nil, err
		}
		wal, err = core.NewFsWAL(env.FS, walFile, e.opts.GroupCommitSize)
		if err != nil {
			return nil, err
		}
	}
	e.wal = wal
	maxTxn, err := e.replayWAL()
	if err != nil {
		return nil, fmt.Errorf("inp: wal replay: %w", err)
	}
	e.TxnID = maxTxn
	if e.ckptTxn > e.TxnID {
		e.TxnID = e.ckptTxn
	}
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) replayWAL() (uint64, error) {
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	if workers <= 1 {
		return e.replayWALSequential()
	}
	return e.replayWALParallel(workers)
}

func (e *Engine) replayWALSequential() (uint64, error) {
	e.Rec.Workers = 1
	// Records at or below the checkpoint's transaction floor are already in
	// the checkpoint image; they reappear when a truncated log's extents are
	// reused and must not be applied twice (or out of order).
	return e.wal.Replay(e.ckptTxn, func(r core.WalRecord) error {
		e.Rec.Records++
		tm := e.Tables[r.Table]
		switch r.Type {
		case core.WalInsert:
			row, err := core.DecodeRow(tm.Schema, r.After)
			if err != nil {
				return err
			}
			e.apply(tm, r.Key, row)
		case core.WalUpdate:
			upd, err := core.DecodeDelta(tm.Schema, r.After)
			if err != nil {
				return err
			}
			e.applyUpdate(tm, r.Key, upd)
		case core.WalDelete:
			e.applyDelete(tm, r.Key)
		}
		return nil
	})
}

// replayOp is one collapsed per-tuple outcome of the redo analysis.
type replayOp struct {
	table int
	key   uint64
	kind  uint8 // core.WalInsert (full row), WalUpdate (merged delta), WalDelete
	row   []core.Value
	upd   core.Update
}

// replayWALParallel splits ARIES-style redo into an analysis pass and a
// fan-out apply stage keyed by tuple id. Analysis runs on the recovering
// goroutine (the WAL read is a device access; the nvm.Device data path is
// single-owner) and shards the committed records by (table, key). Workers
// then collapse each tuple's record sequence — decode, delta merging,
// insert/delete cancellation — entirely in host memory, and the owner
// applies one final operation per tuple. Per-tuple log order is preserved
// inside a shard, and tuples in different shards are independent (the only
// shared structures, the secondary indexes, are written in the serial apply
// stage), so the collapse commutes with sequential replay.
func (e *Engine) replayWALParallel(workers int) (uint64, error) {
	shards := make([][]core.WalRecord, workers)
	var nrec int64
	maxTxn, err := e.wal.Replay(e.ckptTxn, func(r core.WalRecord) error {
		nrec++
		s := replayShard(r.Table, r.Key, workers)
		shards[s] = append(shards[s], r)
		return nil
	})
	if err != nil {
		return 0, err
	}
	e.Rec = core.RecoveryReport{Records: nrec, Workers: workers}

	outs := make([][]replayOp, workers)
	err = core.ParallelShards(workers, func(s int) error {
		ops, err := collapseRecords(e.Tables, shards[s])
		outs[s] = ops
		return err
	})
	if err != nil {
		return 0, err
	}
	for _, ops := range outs {
		for i := range ops {
			op := &ops[i]
			tm := e.Tables[op.table]
			switch op.kind {
			case core.WalInsert:
				e.apply(tm, op.key, op.row)
			case core.WalUpdate:
				e.applyUpdate(tm, op.key, op.upd)
			case core.WalDelete:
				e.applyDelete(tm, op.key)
			}
		}
	}
	return maxTxn, nil
}

// replayShard assigns a tuple to a redo worker (Fibonacci-hash mix so dense
// key ranges spread evenly).
func replayShard(table int, key uint64, workers int) int {
	h := (key ^ uint64(table)<<32) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(workers))
}

// collapseRecords folds one shard's records (in log order) into at most one
// operation per tuple. The state machine mirrors what sequential replay
// would leave behind: an insert yields a full row that later deltas are
// applied to; deltas over an absent tuple merge column-wise (later writes
// win) and stay a delta, because the tuple may exist in the checkpoint
// image; a delete cancels everything before it; an insert after a delete is
// a plain replace. Only host memory is touched here.
func collapseRecords(tables []*core.TableMeta, recs []core.WalRecord) ([]replayOp, error) {
	type tupleKey struct {
		table int
		key   uint64
	}
	idx := make(map[tupleKey]int, len(recs))
	var ops []replayOp
	for _, r := range recs {
		tm := tables[r.Table]
		tk := tupleKey{r.Table, r.Key}
		i, seen := idx[tk]
		if !seen {
			i = len(ops)
			idx[tk] = i
			ops = append(ops, replayOp{table: r.Table, key: r.Key, kind: core.WalDelete})
			// Seed state: "no information yet". The first record below
			// overwrites the placeholder kind.
			switch r.Type {
			case core.WalInsert:
				row, err := core.DecodeRow(tm.Schema, r.After)
				if err != nil {
					return nil, err
				}
				ops[i].kind, ops[i].row = core.WalInsert, row
			case core.WalUpdate:
				upd, err := core.DecodeDelta(tm.Schema, r.After)
				if err != nil {
					return nil, err
				}
				ops[i].kind, ops[i].upd = core.WalUpdate, upd
			case core.WalDelete:
				ops[i].kind = core.WalDelete
			}
			continue
		}
		op := &ops[i]
		switch r.Type {
		case core.WalInsert:
			row, err := core.DecodeRow(tm.Schema, r.After)
			if err != nil {
				return nil, err
			}
			op.kind, op.row, op.upd = core.WalInsert, row, core.Update{}
		case core.WalUpdate:
			upd, err := core.DecodeDelta(tm.Schema, r.After)
			if err != nil {
				return nil, err
			}
			switch op.kind {
			case core.WalInsert:
				core.ApplyDelta(op.row, upd)
			case core.WalUpdate:
				op.upd = mergeDelta(op.upd, upd)
			case core.WalDelete:
				// Update of a tuple this shard last saw deleted: sequential
				// replay's applyUpdate would be a no-op on the missing key.
			}
		case core.WalDelete:
			op.kind, op.row, op.upd = core.WalDelete, nil, core.Update{}
		}
	}
	return ops, nil
}

// mergeDelta folds a later delta into an earlier one: later column writes
// win, untouched columns pass through.
func mergeDelta(old, add core.Update) core.Update {
	for j, ci := range add.Cols {
		replaced := false
		for k, cj := range old.Cols {
			if cj == ci {
				old.Vals[k] = add.Vals[j]
				replaced = true
				break
			}
		}
		if !replaced {
			old.Cols = append(old.Cols, ci)
			old.Vals = append(old.Vals, add.Vals[j])
		}
	}
	return old
}

// apply installs a row (used by replay and checkpoint load).
func (e *Engine) apply(tm *core.TableMeta, key uint64, row []core.Value) {
	h := e.heaps[tm.ID]
	if slot, ok := e.primary[tm.ID].Get(key); ok {
		// Replayed insert over checkpointed tuple: replace.
		e.removeSecondaries(tm, key, h.ReadRow(slot))
		h.FreeSlot(slot)
		e.primary[tm.ID].Delete(key)
	}
	slot := h.AllocSlot(key)
	h.WriteRow(slot, row)
	h.PersistSlot(slot)
	e.primary[tm.ID].Put(key, slot)
	e.insertSecondaries(tm, key, row)
}

func (e *Engine) applyUpdate(tm *core.TableMeta, key uint64, upd core.Update) {
	h := e.heaps[tm.ID]
	slot, ok := e.primary[tm.ID].Get(key)
	if !ok {
		return
	}
	old := h.ReadRow(slot)
	e.removeSecondaries(tm, key, old)
	for j, ci := range upd.Cols {
		if tm.Schema.Columns[ci].Type == core.TString {
			h.FreeVar(h.ColVarPtr(slot, ci))
		}
		h.WriteCol(slot, ci, upd.Vals[j])
	}
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	e.insertSecondaries(tm, key, now)
}

func (e *Engine) applyDelete(tm *core.TableMeta, key uint64) {
	h := e.heaps[tm.ID]
	slot, ok := e.primary[tm.ID].Get(key)
	if !ok {
		return
	}
	e.removeSecondaries(tm, key, h.ReadRow(slot))
	h.FreeSlot(slot)
	e.primary[tm.ID].Delete(key)
}

func (e *Engine) insertSecondaries(tm *core.TableMeta, key uint64, row []core.Value) {
	for j, ix := range tm.Schema.Secondary {
		e.second[tm.ID][j].Put(core.SecComposite(ix.SecKey(row), key), key)
	}
}

func (e *Engine) removeSecondaries(tm *core.TableMeta, key uint64, row []core.Value) {
	for j, ix := range tm.Schema.Secondary {
		e.second[tm.ID][j].Delete(core.SecComposite(ix.SecKey(row), key))
	}
}

// Name returns "inp".
func (e *Engine) Name() string { return "inp" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.walMark = e.wal.Mark()
	e.undo = e.undo[:0]
	return nil
}

// Commit appends the commit record and group-commits.
func (e *Engine) Commit() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	err := e.wal.TxnCommitted(e.TxnID)
	stop()
	if err == nil {
		// Publish MVCC versions now only if the commit record reached the
		// durability barrier (the group flushed); otherwise they wait for
		// Flush so readers never observe an unacked write.
		e.MV.CommitStaged(e.TxnID, e.wal.PendingTxns() == 0)
	}
	if err != nil {
		// The commit record never became durable (a retryable flush keeps
		// the buffer; the file was rewound), so the transaction did not
		// happen: roll the in-memory state back and end the txn so the
		// caller can Begin again and retry.
		if rerr := e.rollback(); rerr != nil {
			return core.Corrupt(errors.Join(err, rerr))
		}
		return err
	}
	// Checkpoints bound WAL replay; only transactions that wrote count.
	if len(e.undo) > 0 {
		e.sinceCkpt++
	}
	if e.opts.CheckpointEvery > 0 && e.sinceCkpt >= e.opts.CheckpointEvery {
		if err := e.Checkpoint(); err != nil {
			// The transaction committed (its WAL group may still be
			// buffered, which is the normal group-commit window); only the
			// replay-bounding checkpoint failed. sinceCkpt is not reset, so
			// a later commit retries it. End the txn before surfacing.
			_ = e.EndTx()
			return err
		}
	}
	return e.EndTx()
}

// Abort rolls back the transaction in memory and drops its WAL records.
func (e *Engine) Abort() error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	return e.rollback()
}

// rollback undoes the running transaction's in-memory effects, drops its
// buffered WAL records, and ends the transaction. Shared by Abort and the
// commit-failure path, so every exit leaves the engine ready for Begin.
func (e *Engine) rollback() error {
	for i := len(e.undo) - 1; i >= 0; i-- {
		u := e.undo[i]
		tm := e.Tables[u.table]
		switch u.op {
		case core.WalInsert:
			e.applyDelete(tm, u.key)
		case core.WalUpdate:
			e.apply(tm, u.key, u.before)
		case core.WalDelete:
			e.apply(tm, u.key, u.before)
		}
	}
	e.wal.DropTail(e.walMark)
	e.MV.DropStaged()
	return e.EndTx()
}

// Insert adds a tuple (§3.1: WAL first, then table storage, then indexes).
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	_, exists := e.primary[tm.ID].Get(key)
	stopIdx()
	if exists {
		return core.ErrKeyExists
	}

	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalInsert, TxnID: e.TxnID,
		Table: tm.ID, Key: key, After: core.EncodeRow(tm.Schema, row)})
	stop()

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	h := e.heaps[tm.ID]
	slot := h.AllocSlot(key)
	h.WriteRow(slot, row)
	h.PersistSlot(slot)
	stopSt()

	stopIdx = e.Bd.Timer(&e.Bd.Index)
	e.primary[tm.ID].Put(key, slot)
	e.insertSecondaries(tm, key, row)
	stopIdx()

	e.undo = append(e.undo, undoRec{op: core.WalInsert, table: tm.ID, key: key})
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update modifies columns of an existing tuple in place.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return core.ErrKeyNotFound
	}
	h := e.heaps[tm.ID]

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	old := h.ReadRow(slot)
	stopSt()

	// Before image: the old values of the updated columns.
	beforeUpd := core.Update{Cols: upd.Cols, Vals: make([]core.Value, len(upd.Cols))}
	for j, ci := range upd.Cols {
		beforeUpd.Vals[j] = old[ci]
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalUpdate, TxnID: e.TxnID,
		Table: tm.ID, Key: key,
		Before: core.EncodeDelta(tm.Schema, beforeUpd),
		After:  core.EncodeDelta(tm.Schema, upd)})
	stop()

	stopSt = e.Bd.Timer(&e.Bd.Storage)
	for j, ci := range upd.Cols {
		if tm.Schema.Columns[ci].Type == core.TString {
			h.FreeVar(h.ColVarPtr(slot, ci))
		}
		h.WriteCol(slot, ci, upd.Vals[j])
	}
	stopSt()

	stopIdx = e.Bd.Timer(&e.Bd.Index)
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	e.refreshSecondaries(tm, key, old, now)
	stopIdx()

	e.undo = append(e.undo, undoRec{op: core.WalUpdate, table: tm.ID, key: key, before: old})
	e.MV.StageUpsert(table, key, now)
	return nil
}

// refreshSecondaries re-keys secondary entries whose key changed.
func (e *Engine) refreshSecondaries(tm *core.TableMeta, key uint64, old, now []core.Value) {
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			e.second[tm.ID][j].Delete(core.SecComposite(ok, key))
			e.second[tm.ID][j].Put(core.SecComposite(nk, key), key)
		}
	}
}

// Delete removes a tuple.
func (e *Engine) Delete(table string, key uint64) error {
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return core.ErrKeyNotFound
	}
	h := e.heaps[tm.ID]
	old := h.ReadRow(slot)

	stop := e.Bd.Timer(&e.Bd.Recovery)
	e.wal.Append(core.WalRecord{Type: core.WalDelete, TxnID: e.TxnID,
		Table: tm.ID, Key: key, Before: core.EncodeRow(tm.Schema, old)})
	stop()

	stopSt := e.Bd.Timer(&e.Bd.Storage)
	h.FreeSlot(slot)
	stopSt()
	stopIdx = e.Bd.Timer(&e.Bd.Index)
	e.primary[tm.ID].Delete(key)
	e.removeSecondaries(tm, key, old)
	stopIdx()

	e.undo = append(e.undo, undoRec{op: core.WalDelete, table: tm.ID, key: key, before: old})
	e.MV.StageDelete(table, key)
	return nil
}

// Get reads a tuple by primary key.
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	slot, ok := e.primary[tm.ID].Get(key)
	stopIdx()
	if !ok {
		return nil, false, nil
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	row := e.heaps[tm.ID].ReadRow(slot)
	stopSt()
	return row, true, nil
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("inp: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange iterates rows with primary key in [from, to).
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	h := e.heaps[tm.ID]
	e.primary[tm.ID].Iter(from, func(k, slot uint64) bool {
		if k >= to {
			return false
		}
		return fn(k, h.ReadRow(slot))
	})
	return nil
}

// Flush forces the pending group commit to disk.
func (e *Engine) Flush() error {
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := e.wal.Flush(); err != nil {
		return err
	}
	e.MV.PublishDurable()
	return nil
}

// WalStats exposes the WAL's cumulative counters (core.WalStatser).
func (e *Engine) WalStats() core.WalStats { return e.wal.Stats() }

// Checkpoint serializes all live tuples to a gzip-compressed checkpoint
// file, swaps it in atomically, and truncates the WAL (§3.1).
func (e *Engine) Checkpoint() error {
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()
	if err := e.wal.Flush(); err != nil {
		return err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	var rec [20]byte
	for _, tm := range e.Tables {
		h := e.heaps[tm.ID]
		var werr error
		h.Scan(func(slot uint64) bool {
			row := h.ReadRow(slot)
			img := core.EncodeRow(tm.Schema, row)
			binary.LittleEndian.PutUint32(rec[0:], uint32(tm.ID))
			binary.LittleEndian.PutUint64(rec[4:], h.Key(slot))
			binary.LittleEndian.PutUint64(rec[12:], uint64(len(img)))
			if _, werr = zw.Write(rec[:]); werr != nil {
				return false
			}
			if _, werr = zw.Write(img); werr != nil {
				return false
			}
			return true
		})
		if werr != nil {
			return werr
		}
	}
	if err := zw.Close(); err != nil {
		return err
	}
	// Write the next slot: header (seq, txn floor, payload crc) + payload,
	// one fsync. The newest valid slot is never the one being overwritten,
	// so any crash here leaves the previous checkpoint intact; the WAL is
	// truncated only after the new slot is durable.
	seq := e.ckptSeq + 1
	name := ckptSlotA
	if seq%2 == 1 {
		name = ckptSlotB
	}
	payload := buf.Bytes()
	img := make([]byte, ckptHdrSize+len(payload))
	binary.LittleEndian.PutUint64(img[0:], ckptMagic)
	binary.LittleEndian.PutUint64(img[8:], seq)
	binary.LittleEndian.PutUint64(img[16:], e.TxnID)
	binary.LittleEndian.PutUint64(img[24:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(img[32:], crc32.Checksum(payload, ckptCRC))
	copy(img[ckptHdrSize:], payload)
	f, err := e.Env.FS.OpenOrCreate(name)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	e.ckptDurable = int64(len(img))
	e.ckptSeq = seq
	e.ckptTxn = e.TxnID
	e.sinceCkpt = 0
	return e.wal.Truncate()
}

// readCkptSlot parses one checkpoint slot, returning its sequence number,
// transaction floor, and decompressed payload, or ok=false if the slot is
// missing, torn, or stale debris.
func (e *Engine) readCkptSlot(name string) (seq, txn uint64, payload []byte, ok bool) {
	f, err := e.Env.FS.OpenFile(name)
	if err != nil || f.Size() < ckptHdrSize {
		return 0, 0, nil, false
	}
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil {
		return 0, 0, nil, false
	}
	if binary.LittleEndian.Uint64(raw[0:]) != ckptMagic {
		return 0, 0, nil, false
	}
	n := binary.LittleEndian.Uint64(raw[24:])
	if ckptHdrSize+n > uint64(len(raw)) {
		return 0, 0, nil, false
	}
	payload = raw[ckptHdrSize : ckptHdrSize+n]
	if crc32.Checksum(payload, ckptCRC) != binary.LittleEndian.Uint32(raw[32:]) {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint64(raw[8:]), binary.LittleEndian.Uint64(raw[16:]), payload, true
}

// loadCheckpoint restores tuples from the newest valid checkpoint slot, if
// any.
func (e *Engine) loadCheckpoint() error {
	var payload []byte
	for _, name := range []string{ckptSlotA, ckptSlotB} {
		if seq, txn, p, ok := e.readCkptSlot(name); ok && seq > e.ckptSeq {
			e.ckptSeq, e.ckptTxn, payload = seq, txn, p
		}
	}
	if payload == nil {
		return nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		return err
	}
	e.ckptDurable = int64(ckptHdrSize + len(payload))
	off := 0
	for off+20 <= len(data) {
		tid := int(binary.LittleEndian.Uint32(data[off:]))
		key := binary.LittleEndian.Uint64(data[off+4:])
		n := int(binary.LittleEndian.Uint64(data[off+12:]))
		off += 20
		if off+n > len(data) || tid >= len(e.Tables) {
			return fmt.Errorf("inp: corrupt checkpoint")
		}
		tm := e.Tables[tid]
		row, err := core.DecodeRow(tm.Schema, data[off:off+n])
		if err != nil {
			return err
		}
		off += n
		e.apply(tm, key, row)
	}
	return nil
}

// Footprint reports durable plus in-memory storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	u := e.Env.Arena.Usage()
	return core.Footprint{
		Table:      u[pmalloc.TagTable],
		Index:      u[pmalloc.TagIndex],
		Log:        e.wal.SizeBytes(),
		Checkpoint: e.ckptDurable,
	}
}
