package inp

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
)

func factory() enginetest.Factory {
	return enginetest.Factory{
		Name: "inp",
		New: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return New(env, schemas, opts)
		},
		Open: func(env *core.Env, schemas []*core.Schema, opts core.Options) (core.Engine, error) {
			return Open(env, schemas, opts)
		},
		Volatile: true,
	}
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, factory())
}

func TestCheckpointAndTruncate(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	schemas := []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TString, Size: 100}},
	}}
	e, err := New(env, schemas, core.Options{CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 350; i++ {
		if err := e.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.StrVal("payload payload payload")}); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if e.ckptSeq < 3 {
		t.Errorf("expected >=3 checkpoints, got %d", e.ckptSeq)
	}
	fp := e.Footprint()
	if fp.Checkpoint == 0 {
		t.Error("no checkpoint footprint")
	}
	// The WAL was truncated at the last checkpoint, so it holds at most
	// CheckpointEvery transactions' records.
	if fp.Log > 100*200 {
		t.Errorf("log footprint %d suggests truncation failed", fp.Log)
	}

	// Recovery from checkpoint + WAL tail restores all rows.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	env.Dev.Crash()
	env2, err := env.ReopenVolatile()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(env2, schemas, core.Options{CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 350; i++ {
		if _, ok, _ := e2.Get("t", uint64(i)); !ok {
			t.Fatalf("key %d lost (checkpoint recovery)", i)
		}
	}
}

func TestCheckpointCompression(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
	schemas := []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TString, Size: 1000}},
	}}
	e, _ := New(env, schemas, core.Options{CheckpointEvery: 0})
	pad := make([]byte, 500) // zero padding compresses well
	e.Begin()
	for i := int64(1); i <= 200; i++ {
		e.Insert("t", uint64(i), []core.Value{core.IntVal(i), core.BytesVal(pad)})
	}
	e.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	raw := int64(200 * 520)
	if e.Footprint().Checkpoint >= raw/5 {
		t.Errorf("checkpoint %d bytes; gzip should compress 100 KB of zeros well below %d",
			e.Footprint().Checkpoint, raw/5)
	}
}

func TestRecoveryConformance(t *testing.T) {
	enginetest.RunRecoveryConformance(t, factory(), 200)
}

func TestConcurrentRecoveryConformance(t *testing.T) {
	enginetest.RunConcurrentRecoveryConformance(t, factory(), 200)
}

func TestSnapshotConformance(t *testing.T) {
	enginetest.RunSnapshotConformance(t, factory(), 200)
}

func TestOCCConformance(t *testing.T) {
	enginetest.RunOCCConformance(t, factory(), 200)
}

func TestCrossShardConformance(t *testing.T) {
	enginetest.RunCrossShardConformance(t, factory(), 200)
}
