// Package lsm holds the log-structured-update machinery shared by the Log
// engine (§3.3) and the NVM-Log engine (§4.3): the entry model recording
// changes performed on tuples (full images for inserts, updated fields for
// updates, tombstone markers for deletes) and the coalescing logic that
// reconstructs a tuple from entries spread across LSM runs.
package lsm

import "nstore/internal/core"

// Entry kinds.
const (
	KindFull  uint8 = 1 // full tuple image (insert)
	KindDelta uint8 = 2 // updated fields only (update)
	KindTomb  uint8 = 3 // tombstone (delete)
)

// Entry is one change record for a key.
type Entry struct {
	Kind    uint8
	Payload []byte // KindFull: inline row; KindDelta: delta; KindTomb: empty
}

// Merge folds a newer entry over an older one, producing the equivalent
// single entry. It is associative in application order (newest first).
func Merge(s *core.Schema, newer, older Entry) Entry {
	switch newer.Kind {
	case KindFull, KindTomb:
		return newer
	case KindDelta:
		switch older.Kind {
		case KindFull:
			row, err := core.DecodeRow(s, older.Payload)
			if err != nil {
				return newer
			}
			upd, err := core.DecodeDelta(s, newer.Payload)
			if err != nil {
				return newer
			}
			core.ApplyDelta(row, upd)
			return Entry{Kind: KindFull, Payload: core.EncodeRow(s, row)}
		case KindDelta:
			oldUpd, err1 := core.DecodeDelta(s, older.Payload)
			newUpd, err2 := core.DecodeDelta(s, newer.Payload)
			if err1 != nil || err2 != nil {
				return newer
			}
			// Newer columns win; older columns not overwritten survive.
			merged := core.Update{}
			seen := make(map[int]bool)
			for j, ci := range newUpd.Cols {
				merged.Cols = append(merged.Cols, ci)
				merged.Vals = append(merged.Vals, newUpd.Vals[j])
				seen[ci] = true
			}
			for j, ci := range oldUpd.Cols {
				if !seen[ci] {
					merged.Cols = append(merged.Cols, ci)
					merged.Vals = append(merged.Vals, oldUpd.Vals[j])
				}
			}
			return Entry{Kind: KindDelta, Payload: core.EncodeDelta(s, merged)}
		default:
			return newer
		}
	}
	return newer
}

// Coalesce reconstructs the current tuple from entries ordered newest
// first (the paper's tuple-coalescing read path). It reports:
//
//	row, true, true   — the key exists with this row
//	nil, false, true  — the key is deleted (resolved by a tombstone)
//	nil, false, false — unresolved: only deltas seen, caller must read
//	                    deeper runs
func Coalesce(s *core.Schema, entries []Entry) (row []core.Value, exists bool, resolved bool) {
	if len(entries) == 0 {
		return nil, false, false
	}
	acc := entries[0]
	for _, e := range entries[1:] {
		acc = Merge(s, acc, e)
		if acc.Kind != KindDelta {
			break
		}
	}
	switch acc.Kind {
	case KindTomb:
		return nil, false, true
	case KindFull:
		r, err := core.DecodeRow(s, acc.Payload)
		if err != nil {
			return nil, false, true
		}
		return r, true, true
	default:
		return nil, false, false
	}
}
