// Package lsm holds the log-structured-update machinery shared by the Log
// engine (§3.3) and the NVM-Log engine (§4.3): the entry model recording
// changes performed on tuples (full images for inserts, updated fields for
// updates, tombstone markers for deletes) and the coalescing logic that
// reconstructs a tuple from entries spread across LSM runs.
package lsm

import "nstore/internal/core"

// Entry kinds.
const (
	KindFull    uint8 = 1 // full tuple image (insert)
	KindDelta   uint8 = 2 // updated fields only (update)
	KindTomb    uint8 = 3 // tombstone (delete)
	KindFullPtr uint8 = 4 // full image separated into the value log
)

// Entry is one change record for a key.
type Entry struct {
	Kind    uint8
	Payload []byte // KindFull: inline row; KindDelta: delta; KindTomb: empty;
	// KindFullPtr: 12-byte core.VlogPtr
}

// Resolver materializes a KindFullPtr entry into a KindFull one by reading
// the value log. Merge only invokes it when a delta must be applied on top
// of a separated image — untouched pointers flow through compaction without
// touching their values, which is the point of the separation.
type Resolver func(key uint64, e Entry) (Entry, error)

// Merge folds a newer entry over an older one, producing the equivalent
// single entry. It is associative in application order (newest first).
// KindFullPtr entries pass through opaquely; use MergeR when a resolver is
// available.
func Merge(s *core.Schema, newer, older Entry) Entry {
	e, _ := MergeR(s, 0, newer, older, nil)
	return e
}

// MergeR is Merge with value-log resolution: applying a delta over a
// separated image reads the value, applies the delta, and yields an inline
// full image. Resolver errors (a corrupt value-log record) propagate.
func MergeR(s *core.Schema, key uint64, newer, older Entry, resolve Resolver) (Entry, error) {
	switch newer.Kind {
	case KindFull, KindTomb, KindFullPtr:
		return newer, nil
	case KindDelta:
		if older.Kind == KindFullPtr {
			if resolve == nil {
				// No resolver: leave the delta unresolved so the caller
				// keeps reading deeper entries (matches the unknown-kind
				// behaviour below).
				return newer, nil
			}
			full, err := resolve(key, older)
			if err != nil {
				return Entry{}, err
			}
			older = full
		}
		switch older.Kind {
		case KindFull:
			row, err := core.DecodeRow(s, older.Payload)
			if err != nil {
				return newer, nil
			}
			upd, err := core.DecodeDelta(s, newer.Payload)
			if err != nil {
				return newer, nil
			}
			core.ApplyDelta(row, upd)
			return Entry{Kind: KindFull, Payload: core.EncodeRow(s, row)}, nil
		case KindDelta:
			oldUpd, err1 := core.DecodeDelta(s, older.Payload)
			newUpd, err2 := core.DecodeDelta(s, newer.Payload)
			if err1 != nil || err2 != nil {
				return newer, nil
			}
			// Newer columns win; older columns not overwritten survive.
			merged := core.Update{}
			seen := make(map[int]bool)
			for j, ci := range newUpd.Cols {
				merged.Cols = append(merged.Cols, ci)
				merged.Vals = append(merged.Vals, newUpd.Vals[j])
				seen[ci] = true
			}
			for j, ci := range oldUpd.Cols {
				if !seen[ci] {
					merged.Cols = append(merged.Cols, ci)
					merged.Vals = append(merged.Vals, oldUpd.Vals[j])
				}
			}
			return Entry{Kind: KindDelta, Payload: core.EncodeDelta(s, merged)}, nil
		default:
			return newer, nil
		}
	}
	return newer, nil
}

// Coalesce reconstructs the current tuple from entries ordered newest
// first (the paper's tuple-coalescing read path). It reports:
//
//	row, true, true   — the key exists with this row
//	nil, false, true  — the key is deleted (resolved by a tombstone)
//	nil, false, false — unresolved: only deltas seen, caller must read
//	                    deeper runs
func Coalesce(s *core.Schema, entries []Entry) (row []core.Value, exists bool, resolved bool) {
	row, exists, resolved, _ = CoalesceR(s, 0, entries, nil)
	return row, exists, resolved
}

// CoalesceR is Coalesce with value-log resolution: a separated image that
// ends up the terminal entry (or that a delta must land on) is materialized
// through the resolver. Resolver errors propagate.
func CoalesceR(s *core.Schema, key uint64, entries []Entry, resolve Resolver) (row []core.Value, exists bool, resolved bool, err error) {
	if len(entries) == 0 {
		return nil, false, false, nil
	}
	acc := entries[0]
	for _, e := range entries[1:] {
		acc, err = MergeR(s, key, acc, e, resolve)
		if err != nil {
			return nil, false, false, err
		}
		if acc.Kind != KindDelta {
			break
		}
	}
	if acc.Kind == KindFullPtr {
		if resolve == nil {
			return nil, false, false, nil
		}
		acc, err = resolve(key, acc)
		if err != nil {
			return nil, false, false, err
		}
	}
	switch acc.Kind {
	case KindTomb:
		return nil, false, true, nil
	case KindFull:
		r, derr := core.DecodeRow(s, acc.Payload)
		if derr != nil {
			return nil, false, true, nil
		}
		return r, true, true, nil
	default:
		return nil, false, false, nil
	}
}
