package lsm

import (
	"testing"
	"testing/quick"

	"nstore/internal/core"
)

func schema() *core.Schema {
	return &core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TInt},
			{Name: "c", Type: core.TString, Size: 64},
		},
	}
}

func full(s *core.Schema, a, b int64, c string) Entry {
	return Entry{Kind: KindFull, Payload: core.EncodeRow(s, []core.Value{
		core.IntVal(a), core.IntVal(b), core.StrVal(c)})}
}

func delta(s *core.Schema, cols []int, vals []core.Value) Entry {
	return Entry{Kind: KindDelta, Payload: core.EncodeDelta(s, core.Update{Cols: cols, Vals: vals})}
}

func TestMergeFullWins(t *testing.T) {
	s := schema()
	got := Merge(s, full(s, 1, 2, "x"), delta(s, []int{1}, []core.Value{core.IntVal(99)}))
	if got.Kind != KindFull {
		t.Fatalf("kind = %d", got.Kind)
	}
	row, _ := core.DecodeRow(s, got.Payload)
	if row[1].I != 2 {
		t.Errorf("newer full overwritten: %v", row)
	}
}

func TestMergeDeltaOverFull(t *testing.T) {
	s := schema()
	got := Merge(s, delta(s, []int{1, 2}, []core.Value{core.IntVal(99), core.StrVal("new")}), full(s, 1, 2, "x"))
	if got.Kind != KindFull {
		t.Fatalf("kind = %d", got.Kind)
	}
	row, _ := core.DecodeRow(s, got.Payload)
	if row[0].I != 1 || row[1].I != 99 || string(row[2].S) != "new" {
		t.Errorf("delta not applied: %v", row)
	}
}

func TestMergeDeltaOverDelta(t *testing.T) {
	s := schema()
	newer := delta(s, []int{1}, []core.Value{core.IntVal(100)})
	older := delta(s, []int{1, 2}, []core.Value{core.IntVal(50), core.StrVal("old")})
	got := Merge(s, newer, older)
	if got.Kind != KindDelta {
		t.Fatalf("kind = %d", got.Kind)
	}
	upd, err := core.DecodeDelta(s, got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int]core.Value{}
	for j, ci := range upd.Cols {
		vals[ci] = upd.Vals[j]
	}
	if vals[1].I != 100 {
		t.Errorf("newer column lost: %v", vals)
	}
	if string(vals[2].S) != "old" {
		t.Errorf("older-only column lost: %v", vals)
	}
}

func TestMergeTombWins(t *testing.T) {
	s := schema()
	got := Merge(s, Entry{Kind: KindTomb}, full(s, 1, 2, "x"))
	if got.Kind != KindTomb {
		t.Fatalf("kind = %d", got.Kind)
	}
}

func TestCoalesce(t *testing.T) {
	s := schema()
	// delta over delta over full
	entries := []Entry{
		delta(s, []int{1}, []core.Value{core.IntVal(3)}),
		delta(s, []int{2}, []core.Value{core.StrVal("mid")}),
		full(s, 10, 20, "base"),
	}
	row, exists, resolved := Coalesce(s, entries)
	if !exists || !resolved {
		t.Fatalf("exists=%v resolved=%v", exists, resolved)
	}
	if row[0].I != 10 || row[1].I != 3 || string(row[2].S) != "mid" {
		t.Errorf("coalesced row: %v", row)
	}
}

func TestCoalesceTombstone(t *testing.T) {
	s := schema()
	_, exists, resolved := Coalesce(s, []Entry{{Kind: KindTomb}, full(s, 1, 2, "x")})
	if exists || !resolved {
		t.Fatalf("tombstone: exists=%v resolved=%v", exists, resolved)
	}
}

func TestCoalesceUnresolvedDeltas(t *testing.T) {
	s := schema()
	_, exists, resolved := Coalesce(s, []Entry{delta(s, []int{1}, []core.Value{core.IntVal(1)})})
	if exists || resolved {
		t.Fatalf("bare delta: exists=%v resolved=%v", exists, resolved)
	}
	if _, exists, resolved := Coalesce(s, nil); exists || resolved {
		t.Fatal("empty entry list resolved")
	}
}

// Property: coalescing a random chain of deltas over a full image equals
// applying the updates in order to the row.
func TestQuickCoalesceEquivalence(t *testing.T) {
	s := schema()
	fn := func(base [2]int64, updates []uint16) bool {
		if len(updates) > 20 {
			updates = updates[:20]
		}
		row := []core.Value{core.IntVal(base[0]), core.IntVal(base[1]), core.StrVal("s")}
		var chain []Entry // newest first
		expect := core.CloneRow(row)
		for _, u := range updates {
			col := int(u%2) + 0 // columns 0 or 1
			val := int64(u / 2)
			upd := core.Update{Cols: []int{col}, Vals: []core.Value{core.IntVal(val)}}
			core.ApplyDelta(expect, upd)
			chain = append([]Entry{delta(s, upd.Cols, upd.Vals)}, chain...)
		}
		chain = append(chain, Entry{Kind: KindFull, Payload: core.EncodeRow(s, row)})
		got, exists, resolved := Coalesce(s, chain)
		if !exists || !resolved {
			return false
		}
		return core.RowsEqual(s, got, expect)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
