package lsm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nstore/internal/core"
)

// ErrClosed is returned (wrapped retryable) by Submit after Close. Engines
// chaining submissions from a release stage treat it as benign: the work
// re-queues at the next trigger, or the engine is shutting down.
var ErrClosed = errors.New("lsm: flush manager closed")

// Flush pipeline stages (the NoKV-style stage machine). Prepare runs
// synchronously at the trigger point — it freezes the memtable and rotates
// the WAL segment, which must happen before the next transaction appends.
// Build, install, and release run as one pipeline task, inline or on the
// background worker.
type FlushStage int

const (
	StagePrepare FlushStage = iota
	StageBuild
	StageInstall
	StageRelease
	NumFlushStages
)

// String spells the stage for metrics and errors.
func (s FlushStage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StageBuild:
		return "build"
	case StageInstall:
		return "install"
	case StageRelease:
		return "release"
	}
	return "unknown"
}

// FlushTask is one unit of pipeline work: building an SSTable from a frozen
// memtable, merging runs, or a value-log GC pass. The closures run in
// order; a build or install failure skips the remaining stages and leaves
// the prepared state (frozen memtable, retained WAL segment) intact for
// retry — acked commits stay durable via the WAL segment that release
// would have deleted.
type FlushTask struct {
	ID      uint64
	Kind    string // "flush", "compact", "gc"
	Build   func() error
	Install func() error
	Release func() error
}

// FlushManager runs flush tasks either inline (deterministic, the default)
// or on one background worker goroutine. In background mode the engine's
// monitor lock is taken around each task via the lock/unlock hooks, because
// the device data path underneath is single-owner. Task failures go sticky:
// the engine surfaces them on the next Commit or Flush (TakeErr).
type FlushManager struct {
	mu   sync.Mutex
	cond *sync.Cond

	background   bool
	lock, unlock func()
	observe      func(kind string, stage FlushStage, d time.Duration)

	queue    []*FlushTask
	inFlight bool
	sticky   error
	closed   bool
	done     chan struct{} // worker exit, background mode only

	nextID uint64
}

// NewFlushManager builds a manager. lock/unlock guard the engine state in
// background mode (they may be nil when background is false); observe (may
// be nil) receives per-stage wall times.
func NewFlushManager(background bool, lock, unlock func(), observe func(kind string, stage FlushStage, d time.Duration)) *FlushManager {
	m := &FlushManager{background: background, lock: lock, unlock: unlock, observe: observe}
	m.cond = sync.NewCond(&m.mu)
	if background {
		m.done = make(chan struct{})
		go m.run()
	}
	return m
}

// Observe records a stage duration the engine measured itself (prepare runs
// outside the manager).
func (m *FlushManager) Observe(kind string, stage FlushStage, d time.Duration) {
	if m.observe != nil {
		m.observe(kind, stage, d)
	}
}

// Submit enqueues a task. Inline mode runs it immediately — the caller
// already holds the engine lock — and returns its error. Background mode
// returns nil; failures surface later through TakeErr.
func (m *FlushManager) Submit(t *FlushTask) error {
	m.mu.Lock()
	m.nextID++
	t.ID = m.nextID
	if m.closed {
		m.mu.Unlock()
		return core.Retryable(ErrClosed)
	}
	if !m.background {
		m.mu.Unlock()
		return m.exec(t)
	}
	m.queue = append(m.queue, t)
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}

// exec runs one task's stages, timing each.
func (m *FlushManager) exec(t *FlushTask) error {
	for _, st := range []struct {
		stage FlushStage
		fn    func() error
	}{{StageBuild, t.Build}, {StageInstall, t.Install}, {StageRelease, t.Release}} {
		if st.fn == nil {
			continue
		}
		start := time.Now()
		err := st.fn()
		m.Observe(t.Kind, st.stage, time.Since(start))
		if err != nil {
			return fmt.Errorf("lsm: %s %s: %w", t.Kind, st.stage, err)
		}
	}
	return nil
}

// run is the background worker: it drains the queue, taking the engine
// lock around each task, until Close. A panic inside a task (the fault
// injector's simulated crash, or a real bug) is converted to a sticky
// corrupt error instead of killing the process — the engine is no longer
// trustworthy, but the caller gets a typed error, matching the serving
// runtime's panic-to-error supervision.
func (m *FlushManager) run() {
	defer close(m.done)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.inFlight = true
		m.mu.Unlock()

		err := m.execLocked(t)

		m.mu.Lock()
		m.inFlight = false
		if err != nil && m.sticky == nil {
			m.sticky = err
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// execLocked wraps exec with the engine monitor lock and panic recovery.
func (m *FlushManager) execLocked(t *FlushTask) (err error) {
	if m.lock != nil {
		m.lock()
		defer m.unlock()
	}
	defer func() {
		if r := recover(); r != nil {
			err = core.Corrupt(fmt.Errorf("lsm: %s task panicked: %v", t.Kind, r))
		}
	}()
	return m.exec(t)
}

// TakeErr returns and clears the sticky background failure, if any. The
// engine surfaces it on the next Commit/Flush; clearing lets a retried
// flush succeed afterwards.
func (m *FlushManager) TakeErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.sticky
	m.sticky = nil
	return err
}

// Drain blocks until the queue is empty and no task is in flight. The
// caller must NOT hold the engine lock (the worker needs it to finish).
func (m *FlushManager) Drain() {
	m.mu.Lock()
	for len(m.queue) > 0 || m.inFlight {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// Pending reports queued plus in-flight tasks.
func (m *FlushManager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.queue)
	if m.inFlight {
		n++
	}
	return n
}

// Close drains outstanding work and stops the worker. Safe to call twice.
// The caller must not hold the engine lock.
func (m *FlushManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		if m.background {
			<-m.done
		}
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	if m.background {
		<-m.done
	}
}
