package ycsb

import (
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

func smallCfg() Config {
	return Config{Tuples: 800, Txns: 400, Partitions: 4, Mix: Balanced, Skew: LowSkew, Seed: 1}
}

func newDB(t testing.TB, kind testbed.EngineKind, cfg Config) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: cfg.Partitions,
		Env:        core.EnvConfig{DeviceSize: 128 << 20},
		Schemas:    Schema(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadAndRunAllEngines(t *testing.T) {
	cfg := smallCfg()
	for _, kind := range testbed.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			db := newDB(t, kind, cfg)
			if err := Load(db, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := db.Execute(Generate(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != cfg.Txns {
				t.Errorf("committed %d of %d", res.Committed, cfg.Txns)
			}
			if res.Throughput() <= 0 {
				t.Error("zero throughput")
			}
		})
	}
}

func TestWorkloadIsDeterministic(t *testing.T) {
	cfg := smallCfg()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("partition counts differ")
	}
	// Execute both on identical databases; results must match exactly.
	dbA := newDB(t, testbed.NVMInP, cfg)
	dbB := newDB(t, testbed.NVMInP, cfg)
	if err := Load(dbA, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Load(dbB, cfg); err != nil {
		t.Fatal(err)
	}
	ra, err := dbA.Execute(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dbB.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats.BytesWritten != rb.Stats.BytesWritten {
		t.Errorf("nondeterministic writes: %d vs %d", ra.Stats.BytesWritten, rb.Stats.BytesWritten)
	}
}

func TestSkewProducesHotspot(t *testing.T) {
	cfg := smallCfg()
	cfg.Skew = HighSkew
	rng := rand.New(rand.NewSource(3))
	perPart := cfg.Tuples / cfg.Partitions
	hot := int(float64(perPart) * cfg.Skew.TupleFrac)
	inHot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		key := pickKey(cfg, 0, rng)
		if int(key)/cfg.Partitions < hot {
			inHot++
		}
	}
	frac := float64(inHot) / draws
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("high skew hot fraction = %.3f, want ~0.90", frac)
	}
}

func TestKeysStayInPartition(t *testing.T) {
	cfg := smallCfg()
	rng := rand.New(rand.NewSource(4))
	for p := 0; p < cfg.Partitions; p++ {
		for i := 0; i < 1000; i++ {
			key := pickKey(cfg, p, rng)
			if int(key)%cfg.Partitions != p {
				t.Fatalf("key %d escaped partition %d", key, p)
			}
			if key >= uint64(cfg.Tuples) {
				t.Fatalf("key %d out of range", key)
			}
		}
	}
}

func TestMixRatios(t *testing.T) {
	cfg := smallCfg()
	cfg.Txns = 8000
	cfg.Mix = ReadHeavy
	db := newDB(t, testbed.InP, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().BytesWritten
	if _, err := db.Execute(Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	writesRH := db.Stats().BytesWritten - before

	cfg2 := cfg
	cfg2.Mix = WriteHeavy
	db2 := newDB(t, testbed.InP, cfg2)
	if err := Load(db2, cfg2); err != nil {
		t.Fatal(err)
	}
	before2 := db2.Stats().BytesWritten
	if _, err := db2.Execute(Generate(cfg2)); err != nil {
		t.Fatal(err)
	}
	writesWH := db2.Stats().BytesWritten - before2
	if writesWH < writesRH*4 {
		t.Errorf("write-heavy wrote %d, read-heavy %d; mixture ratios look wrong", writesWH, writesRH)
	}
}
