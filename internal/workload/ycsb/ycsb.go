// Package ycsb implements the YCSB workload of §5.1: one table of tuples
// with a primary key and 10 columns of 100-byte string data (~1 KB per
// tuple), read and update transactions in four mixtures, and two skew
// settings producing a localized hotspot within each partition.
package ycsb

import (
	"fmt"
	"math/rand"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

// Mix is a workload mixture (§5.1).
type Mix struct {
	Name    string
	ReadPct int
}

// The four mixtures.
var (
	ReadOnly   = Mix{"read-only", 100}
	ReadHeavy  = Mix{"read-heavy", 90}
	Balanced   = Mix{"balanced", 50}
	WriteHeavy = Mix{"write-heavy", 10}

	// Mixes lists the mixtures in presentation order.
	Mixes = []Mix{ReadOnly, ReadHeavy, Balanced, WriteHeavy}
)

// Skew is a tuple-access skew setting (§5.1).
type Skew struct {
	Name string
	// TxnFrac of transactions access TupleFrac of the tuples.
	TxnFrac   float64
	TupleFrac float64
}

// The two skew settings.
var (
	LowSkew  = Skew{"low-skew", 0.5, 0.2}
	HighSkew = Skew{"high-skew", 0.9, 0.1}

	// Skews lists the skew settings in presentation order.
	Skews = []Skew{LowSkew, HighSkew}
)

// Config sizes a YCSB run.
type Config struct {
	// Tuples is the number of rows (the paper uses 2M; scale down for
	// laptop runs).
	Tuples int
	// Txns is the total pre-generated transaction count, divided evenly
	// among partitions.
	Txns int
	// Partitions must match the testbed database.
	Partitions int
	Mix        Mix
	Skew       Skew
	// Fields and FieldSize describe the value columns (defaults 10 x 100 B).
	Fields    int
	FieldSize int
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.Fields == 0 {
		c.Fields = 10
	}
	if c.FieldSize == 0 {
		c.FieldSize = 100
	}
	if c.Partitions == 0 {
		c.Partitions = 8
	}
	if c.Mix.Name == "" {
		c.Mix = Balanced
	}
	if c.Skew.Name == "" {
		c.Skew = LowSkew
	}
	return c
}

// TableName is the single YCSB table.
const TableName = "usertable"

// Schema returns the usertable schema.
func Schema(cfg Config) []*core.Schema {
	cfg = cfg.withDefaults()
	cols := []core.Column{{Name: "ycsb_key", Type: core.TInt}}
	for i := 0; i < cfg.Fields; i++ {
		cols = append(cols, core.Column{Name: fmt.Sprintf("field%d", i), Type: core.TString, Size: cfg.FieldSize})
	}
	return []*core.Schema{{Name: TableName, Columns: cols}}
}

func makeRow(cfg Config, key uint64, rng *rand.Rand) []core.Value {
	row := make([]core.Value, cfg.Fields+1)
	row[0] = core.IntVal(int64(key))
	for i := 1; i <= cfg.Fields; i++ {
		row[i] = core.BytesVal(randBytes(rng, cfg.FieldSize))
	}
	return row
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return b
}

// Load bulk-inserts the initial database, round-robin across partitions,
// batching inserts to amortize commit costs, then flushes.
func Load(db *testbed.DB, cfg Config) error {
	cfg = cfg.withDefaults()
	const batch = 256
	for p := 0; p < db.Partitions(); p++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)))
		eng := db.Engine(p)
		n := 0
		inTxn := false
		for key := uint64(p); key < uint64(cfg.Tuples); key += uint64(db.Partitions()) {
			if !inTxn {
				if err := eng.Begin(); err != nil {
					return err
				}
				inTxn = true
			}
			if err := eng.Insert(TableName, key, makeRow(cfg, key, rng)); err != nil {
				return err
			}
			n++
			if n%batch == 0 {
				if err := eng.Commit(); err != nil {
					return err
				}
				inTxn = false
			}
		}
		if inTxn {
			if err := eng.Commit(); err != nil {
				return err
			}
		}
	}
	return db.Flush()
}

// pickKey draws a key local to partition p under the skew setting: with
// probability TxnFrac the key falls in the first TupleFrac of the
// partition's tuples (the hotspot).
func pickKey(cfg Config, p int, rng *rand.Rand) uint64 {
	perPart := cfg.Tuples / cfg.Partitions
	hot := int(float64(perPart) * cfg.Skew.TupleFrac)
	if hot < 1 {
		hot = 1
	}
	var idx int
	if rng.Float64() < cfg.Skew.TxnFrac {
		idx = rng.Intn(hot)
	} else if perPart > hot {
		idx = hot + rng.Intn(perPart-hot)
	} else {
		idx = rng.Intn(perPart)
	}
	return uint64(idx*cfg.Partitions + p)
}

// Op is one declarative YCSB operation: a point read, or a single-field
// update. The declarative form is the single source of truth for a
// schedule, so the exact same pre-generated workload can run in-process
// (Txn) or over the network (a wire PUT/GET built from the same fields).
type Op struct {
	Read  bool
	Key   uint64
	Field int    // update: the column index to modify
	Val   []byte // update: the new field value
}

// Txn converts the op to its in-process transaction.
func (o Op) Txn() testbed.Txn {
	if o.Read {
		return readTxn(o.Key)
	}
	return updateTxn(o.Key, o.Field, o.Val)
}

// GenerateOps pre-creates the fixed workload in declarative form, divided
// evenly among the partitions (§5.1: "we pre-generate a fixed workload that
// is the same across all the engines").
func GenerateOps(cfg Config) [][]Op {
	cfg = cfg.withDefaults()
	out := make([][]Op, cfg.Partitions)
	perPart := cfg.Txns / cfg.Partitions
	for p := 0; p < cfg.Partitions; p++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p*7919+13)))
		ops := make([]Op, 0, perPart)
		for i := 0; i < perPart; i++ {
			key := pickKey(cfg, p, rng)
			if rng.Intn(100) < cfg.Mix.ReadPct {
				ops = append(ops, Op{Read: true, Key: key})
			} else {
				field := 1 + rng.Intn(cfg.Fields)
				ops = append(ops, Op{Key: key, Field: field, Val: randBytes(rng, cfg.FieldSize)})
			}
		}
		out[p] = ops
	}
	return out
}

// Generate is GenerateOps lowered to executable transactions.
func Generate(cfg Config) [][]testbed.Txn {
	opss := GenerateOps(cfg)
	out := make([][]testbed.Txn, len(opss))
	for p, ops := range opss {
		txns := make([]testbed.Txn, len(ops))
		for i, o := range ops {
			txns[i] = o.Txn()
		}
		out[p] = txns
	}
	return out
}

// readTxn retrieves a single tuple by primary key.
func readTxn(key uint64) testbed.Txn {
	return func(e core.Engine) error {
		_, ok, err := e.Get(TableName, key)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("ycsb: key %d missing", key)
		}
		return nil
	}
}

// updateTxn modifies a single field of a single tuple by primary key.
func updateTxn(key uint64, field int, val []byte) testbed.Txn {
	return func(e core.Engine) error {
		return e.Update(TableName, key, core.Update{
			Cols: []int{field},
			Vals: []core.Value{core.BytesVal(val)},
		})
	}
}
