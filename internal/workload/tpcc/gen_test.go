package tpcc

import (
	"math/rand"
	"testing"
)

func TestLastNameSpec(t *testing.T) {
	// TPC-C §4.3.2.3 examples.
	cases := map[int]string{
		0:   "BARBARBAR",
		1:   "BARBAROUGHT",
		371: "PRICALLYOUGHT",
		999: "EINGEINGEING",
	}
	for num, want := range cases {
		if got := LastName(num); got != want {
			t.Errorf("LastName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestNURandRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := nuRand(rng, 1023, 259, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("nuRand out of range: %d", v)
		}
	}
}

func TestNURandIsNonUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3001)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[nuRand(rng, 1023, 259, 1, 3000)]++
	}
	// The OR-fold makes some residues far more likely than uniform.
	max, min := 0, draws
	for v := 1; v <= 3000; v++ {
		if counts[v] > max {
			max = counts[v]
		}
		if counts[v] < min {
			min = counts[v]
		}
	}
	if max < min*2 {
		t.Errorf("NURand looks uniform: max %d vs min %d", max, min)
	}
}

func TestKeyEncodingsDisjoint(t *testing.T) {
	// Keys of different (w, d, o, ol) must never collide within a table.
	seen := make(map[uint64]string)
	check := func(k uint64, what string) {
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %s and %s both encode %#x", prev, what, k)
		}
		seen[k] = what
	}
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 10; d++ {
			for o := 1; o <= 20; o++ {
				check(OrderKey(w, d, o), "order")
			}
		}
	}
	seen = make(map[uint64]string)
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 10; d++ {
			for c := 1; c <= 50; c++ {
				check(CustomerKey(w, d, c), "customer")
			}
		}
	}
	seen = make(map[uint64]string)
	for w := 1; w <= 3; w++ {
		for i := 1; i <= 500; i++ {
			check(StockKey(w, i), "stock")
		}
	}
	// Order-line keys nest under their order key range.
	ol1 := OrderLineKey(1, 2, 3, 4)
	lo := OrderKey(1, 2, 3) << 4
	hi := OrderKey(1, 2, 4) << 4
	if ol1 < lo || ol1 >= hi {
		t.Fatalf("order line key %#x outside its order range [%#x,%#x)", ol1, lo, hi)
	}
}

func TestSecondaryKeysFit24BitPKs(t *testing.T) {
	// The CoW engines pack secondary-indexed tables' pks into 24 bits.
	if k := CustomerKey(8, 10, 4095); k >= 1<<24 {
		t.Fatalf("max customer key %#x exceeds 24 bits", k)
	}
	if k := OrderKey(8, 10, 65535); k >= 1<<24 {
		t.Fatalf("max order key %#x exceeds 24 bits", k)
	}
}

func TestGenerateMixRatios(t *testing.T) {
	cfg := Config{Warehouses: 4, Districts: 2, Customers: 30, Items: 100,
		Txns: 20000, Partitions: 4, Seed: 9}.withDefaults()
	// Generation is deterministic and partition lists have the right sizes.
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != cfg.Partitions || len(b) != cfg.Partitions {
		t.Fatal("wrong partition count")
	}
	total := 0
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("nondeterministic generation at partition %d", p)
		}
		total += len(a[p])
	}
	if total != cfg.Txns {
		t.Fatalf("generated %d txns, want %d", total, cfg.Txns)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized customers accepted")
		}
	}()
	Config{Customers: 5000}.withDefaults()
}

func TestLastNameOfCoversLoadedNames(t *testing.T) {
	// Every name randLastNum can draw must exist among loaded customers.
	const customers = 40
	loaded := map[string]bool{}
	for c := 1; c <= customers; c++ {
		loaded[lastNameOf(c, customers)] = true
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		name := LastName(randLastNum(rng, customers))
		if !loaded[name] {
			t.Fatalf("drawable name %q never loaded", name)
		}
	}
}
