package tpcc

import (
	"fmt"
	"math/rand"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

// Config sizes a TPC-C run. The paper configures 8 warehouses and 100,000
// items (~1 GB); defaults here are scaled for laptop runs and adjustable.
type Config struct {
	Warehouses int // default 8
	Districts  int // per warehouse, default 10
	Customers  int // per district, default 120 (spec: 3000)
	Items      int // default 1000 (spec: 100000)
	// InitialOrders per district; the last third start as new orders.
	InitialOrders int // default = Customers
	// Txns is the total pre-generated transaction count.
	Txns       int
	Partitions int // default 8
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.Warehouses == 0 {
		c.Warehouses = 8
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.Customers == 0 {
		c.Customers = 120
	}
	if c.Items == 0 {
		c.Items = 1000
	}
	if c.InitialOrders == 0 {
		c.InitialOrders = c.Customers
	}
	if c.Partitions == 0 {
		c.Partitions = 8
	}
	if c.Customers > 4095 {
		panic("tpcc: customers per district must fit 12 bits")
	}
	if c.Items >= 1<<17 {
		panic("tpcc: items must fit 17 bits")
	}
	return c
}

// PartitionOf maps a warehouse to its home partition.
func (c Config) PartitionOf(w int) int { return (w - 1) % c.Partitions }

// syllables for the TPC-C non-uniform customer last names.
var syllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds the spec's three-syllable last name for num in 0..999.
func LastName(num int) string {
	return syllables[num/100] + syllables[num/10%10] + syllables[num%10]
}

// nuRand is the spec's non-uniform random distribution NURand(A, x, y).
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

func randCustomerID(rng *rand.Rand, customers int) int {
	if customers >= 3000 {
		return nuRand(rng, 1023, 259, 1, customers)
	}
	return 1 + rng.Intn(customers)
}

func randItemID(rng *rand.Rand, items int) int {
	if items >= 8192 {
		return nuRand(rng, 8191, 7911, 1, items)
	}
	return 1 + rng.Intn(items)
}

func randLastNum(rng *rand.Rand, customers int) int {
	limit := 999
	if customers < 1000 {
		limit = customers - 1
	}
	return nuRand(rng, 255, 123, 0, limit)
}

// lastNameOf returns the last name assigned to customer c at load time.
func lastNameOf(c, customers int) string {
	if customers < 1000 {
		return LastName((c - 1) % customers % 1000)
	}
	return LastName((c - 1) % 1000)
}

func str(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return b
}

// Load populates the initial database: items are replicated into every
// partition; warehouses (with their districts, customers, stock, orders)
// go to their home partitions.
func Load(db *testbed.DB, cfg Config) error {
	cfg = cfg.withDefaults()
	if db.Partitions() != cfg.Partitions {
		return fmt.Errorf("tpcc: db has %d partitions, config %d", db.Partitions(), cfg.Partitions)
	}
	for p := 0; p < cfg.Partitions; p++ {
		if err := loadItems(db.Engine(p), cfg, p); err != nil {
			return err
		}
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		if err := loadWarehouse(db.Engine(cfg.PartitionOf(w)), cfg, w); err != nil {
			return err
		}
	}
	return db.Flush()
}

// batcher groups loader inserts into batch-sized transactions.
type batcher struct {
	eng   core.Engine
	n     int
	inTxn bool
}

func (b *batcher) insert(table string, key uint64, row []core.Value) error {
	if !b.inTxn {
		if err := b.eng.Begin(); err != nil {
			return err
		}
		b.inTxn = true
	}
	if err := b.eng.Insert(table, key, row); err != nil {
		return err
	}
	b.n++
	if b.n%256 == 0 {
		b.inTxn = false
		return b.eng.Commit()
	}
	return nil
}

func (b *batcher) done() error {
	if b.inTxn {
		b.inTxn = false
		return b.eng.Commit()
	}
	return nil
}

func loadItems(eng core.Engine, cfg Config, p int) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	b := &batcher{eng: eng}
	for i := 1; i <= cfg.Items; i++ {
		row := []core.Value{
			core.IntVal(int64(i)),
			core.IntVal(int64(rng.Intn(10000))),
			core.IntVal(int64(100 + rng.Intn(9900))), // price in cents
			core.BytesVal(str(rng, 14)),
			core.BytesVal(str(rng, 26)),
		}
		if err := b.insert(TItem, ItemKey(i), row); err != nil {
			return err
		}
	}
	return b.done()
}

func loadWarehouse(eng core.Engine, cfg Config, w int) error {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*31))
	b := &batcher{eng: eng}
	whRow := []core.Value{
		core.IntVal(int64(w)),
		core.BytesVal(str(rng, 8)),
		core.BytesVal(str(rng, 18)),
		core.BytesVal(str(rng, 14)),
		core.BytesVal(str(rng, 2)),
		core.BytesVal(str(rng, 9)),
		core.IntVal(int64(rng.Intn(2001))), // tax 0..20.00%
		core.IntVal(30000000),              // ytd $300,000.00
	}
	if err := b.insert(TWarehouse, WarehouseKey(w), whRow); err != nil {
		return err
	}
	// Stock for every item.
	for i := 1; i <= cfg.Items; i++ {
		row := []core.Value{
			core.IntVal(int64(i)),
			core.IntVal(int64(w)),
			core.IntVal(int64(10 + rng.Intn(91))),
			core.IntVal(0),
			core.IntVal(0),
			core.IntVal(0),
			core.BytesVal(str(rng, 24)),
			core.BytesVal(str(rng, 30)),
		}
		if err := b.insert(TStock, StockKey(w, i), row); err != nil {
			return err
		}
	}
	for d := 1; d <= cfg.Districts; d++ {
		if err := loadDistrict(b, cfg, rng, w, d); err != nil {
			return err
		}
	}
	return b.done()
}

func loadDistrict(b *batcher, cfg Config, rng *rand.Rand, w, d int) error {
	dRow := []core.Value{
		core.IntVal(int64(d)),
		core.IntVal(int64(w)),
		core.BytesVal(str(rng, 8)),
		core.BytesVal(str(rng, 18)),
		core.BytesVal(str(rng, 14)),
		core.BytesVal(str(rng, 2)),
		core.BytesVal(str(rng, 9)),
		core.IntVal(int64(rng.Intn(2001))),
		core.IntVal(3000000),
		core.IntVal(int64(cfg.InitialOrders + 1)),
	}
	if err := b.insert(TDistrict, DistrictKey(w, d), dRow); err != nil {
		return err
	}
	for c := 1; c <= cfg.Customers; c++ {
		credit := "GC"
		if rng.Intn(10) == 0 {
			credit = "BC"
		}
		row := []core.Value{
			core.IntVal(int64(c)),
			core.IntVal(int64(d)),
			core.IntVal(int64(w)),
			core.BytesVal(str(rng, 10)),
			core.StrVal("OE"),
			core.StrVal(lastNameOf(c, cfg.Customers)),
			core.BytesVal(str(rng, 18)),
			core.BytesVal(str(rng, 14)),
			core.BytesVal(str(rng, 2)),
			core.BytesVal(str(rng, 9)),
			core.BytesVal(str(rng, 16)),
			core.StrVal(credit),
			core.IntVal(5000000),
			core.IntVal(-1000), // balance -$10.00
			core.IntVal(1000),
			core.IntVal(1),
			core.BytesVal(str(rng, 100)),
		}
		if err := b.insert(TCustomer, CustomerKey(w, d, c), row); err != nil {
			return err
		}
	}
	// Initial orders: one per customer in random permutation; the last
	// third are still pending delivery (new_order rows).
	perm := rng.Perm(cfg.Customers)
	for o := 1; o <= cfg.InitialOrders; o++ {
		c := perm[(o-1)%cfg.Customers] + 1
		olCnt := 5 + rng.Intn(11)
		carrier := int64(1 + rng.Intn(10))
		pending := o > cfg.InitialOrders*2/3
		if pending {
			carrier = 0
		}
		oRow := []core.Value{
			core.IntVal(int64(o)),
			core.IntVal(int64(d)),
			core.IntVal(int64(w)),
			core.IntVal(int64(c)),
			core.IntVal(int64(o)), // entry date surrogate
			core.IntVal(carrier),
			core.IntVal(int64(olCnt)),
			core.IntVal(1),
		}
		if err := b.insert(TOrder, OrderKey(w, d, o), oRow); err != nil {
			return err
		}
		if pending {
			noRow := []core.Value{
				core.IntVal(int64(o)), core.IntVal(int64(d)), core.IntVal(int64(w)),
			}
			if err := b.insert(TNewOrder, OrderKey(w, d, o), noRow); err != nil {
				return err
			}
		}
		for ol := 1; ol <= olCnt; ol++ {
			item := 1 + rng.Intn(cfg.Items)
			amount := int64(0)
			deliveryD := int64(o)
			if pending {
				amount = int64(1 + rng.Intn(999999))
				deliveryD = 0
			}
			olRow := []core.Value{
				core.IntVal(int64(o)),
				core.IntVal(int64(d)),
				core.IntVal(int64(w)),
				core.IntVal(int64(ol)),
				core.IntVal(int64(item)),
				core.IntVal(int64(w)),
				core.IntVal(deliveryD),
				core.IntVal(5),
				core.IntVal(amount),
				core.BytesVal(str(rng, 24)),
			}
			if err := b.insert(TOrderLine, OrderLineKey(w, d, o, ol), olRow); err != nil {
				return err
			}
		}
	}
	return nil
}
