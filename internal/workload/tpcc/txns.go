package tpcc

import (
	"fmt"
	"math/rand"
	"sort"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

// Transaction mix percentages (the standard TPC-C deck; ~88% of the
// workload modifies the database, §5.1).
const (
	pctNewOrder    = 45
	pctPayment     = 43
	pctOrderStatus = 4
	pctDelivery    = 4
	// StockLevel gets the remaining 4%.
)

// Generate pre-creates the fixed transaction workload. Each partition's
// transactions target only its home warehouses.
func Generate(cfg Config) [][]testbed.Txn {
	cfg = cfg.withDefaults()
	out := make([][]testbed.Txn, cfg.Partitions)
	perPart := cfg.Txns / cfg.Partitions
	// History sequence counters, per warehouse, namespaced by seed so
	// successive workloads on the same database never collide.
	histSeq := make([]int, cfg.Warehouses+1)
	histBase := int(cfg.Seed&0xfff) << 20
	for w := range histSeq {
		histSeq[w] = histBase
	}

	// Warehouses per partition.
	homes := make([][]int, cfg.Partitions)
	for w := 1; w <= cfg.Warehouses; w++ {
		p := cfg.PartitionOf(w)
		homes[p] = append(homes[p], w)
	}
	for p := 0; p < cfg.Partitions; p++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p*104729+7)))
		txns := make([]testbed.Txn, 0, perPart)
		if len(homes[p]) == 0 {
			out[p] = txns
			continue
		}
		for i := 0; i < perPart; i++ {
			w := homes[p][rng.Intn(len(homes[p]))]
			roll := rng.Intn(100)
			switch {
			case roll < pctNewOrder:
				txns = append(txns, genNewOrder(cfg, rng, w))
			case roll < pctNewOrder+pctPayment:
				histSeq[w]++
				txns = append(txns, genPayment(cfg, rng, w, histSeq[w]))
			case roll < pctNewOrder+pctPayment+pctOrderStatus:
				txns = append(txns, genOrderStatus(cfg, rng, w))
			case roll < pctNewOrder+pctPayment+pctOrderStatus+pctDelivery:
				txns = append(txns, genDelivery(cfg, rng, w))
			default:
				txns = append(txns, genStockLevel(cfg, rng, w))
			}
		}
		out[p] = txns
	}
	return out
}

type orderLineSpec struct {
	item, qty int
}

// genNewOrder creates a NewOrder invocation: order entry against one
// district, 5–15 order lines, 1% rolled back (§5.1, TPC-C §2.4).
func genNewOrder(cfg Config, rng *rand.Rand, w int) testbed.Txn {
	d := 1 + rng.Intn(cfg.Districts)
	c := randCustomerID(rng, cfg.Customers)
	lines := make([]orderLineSpec, 5+rng.Intn(11))
	for i := range lines {
		lines[i] = orderLineSpec{item: randItemID(rng, cfg.Items), qty: 1 + rng.Intn(10)}
	}
	abort := rng.Intn(100) == 0
	entry := rng.Int63n(1 << 30)

	return func(e core.Engine) error {
		wRow, ok, err := e.Get(TWarehouse, WarehouseKey(w))
		if err != nil || !ok {
			return orErr(err, "warehouse %d", w)
		}
		dKey := DistrictKey(w, d)
		dRow, ok, err := e.Get(TDistrict, dKey)
		if err != nil || !ok {
			return orErr(err, "district %d/%d", w, d)
		}
		oID := int(dRow[DNextOID].I)
		if err := e.Update(TDistrict, dKey, core.Update{
			Cols: []int{DNextOID}, Vals: []core.Value{core.IntVal(int64(oID + 1))},
		}); err != nil {
			return err
		}
		cRow, ok, err := e.Get(TCustomer, CustomerKey(w, d, c))
		if err != nil || !ok {
			return orErr(err, "customer %d/%d/%d", w, d, c)
		}
		_ = cRow
		if abort {
			// Unused item number: the transaction rolls back after the
			// district update (exercises undo).
			return testbed.ErrAbort
		}
		oKey := OrderKey(w, d, oID)
		if err := e.Insert(TOrder, oKey, []core.Value{
			core.IntVal(int64(oID)), core.IntVal(int64(d)), core.IntVal(int64(w)),
			core.IntVal(int64(c)), core.IntVal(entry), core.IntVal(0),
			core.IntVal(int64(len(lines))), core.IntVal(1),
		}); err != nil {
			return err
		}
		if err := e.Insert(TNewOrder, oKey, []core.Value{
			core.IntVal(int64(oID)), core.IntVal(int64(d)), core.IntVal(int64(w)),
		}); err != nil {
			return err
		}
		taxMul := 10000 + wRow[WTax].I + dRow[DTax].I
		for ol, spec := range lines {
			iRow, ok, err := e.Get(TItem, ItemKey(spec.item))
			if err != nil || !ok {
				return orErr(err, "item %d", spec.item)
			}
			sKey := StockKey(w, spec.item)
			sRow, ok, err := e.Get(TStock, sKey)
			if err != nil || !ok {
				return orErr(err, "stock %d/%d", w, spec.item)
			}
			qty := sRow[SQuantity].I
			if qty >= int64(spec.qty)+10 {
				qty -= int64(spec.qty)
			} else {
				qty = qty - int64(spec.qty) + 91
			}
			if err := e.Update(TStock, sKey, core.Update{
				Cols: []int{SQuantity, SYtd, SOrderCnt},
				Vals: []core.Value{
					core.IntVal(qty),
					core.IntVal(sRow[SYtd].I + int64(spec.qty)),
					core.IntVal(sRow[SOrderCnt].I + 1),
				},
			}); err != nil {
				return err
			}
			amount := int64(spec.qty) * iRow[IPrice].I * taxMul / 10000
			if err := e.Insert(TOrderLine, OrderLineKey(w, d, oID, ol+1), []core.Value{
				core.IntVal(int64(oID)), core.IntVal(int64(d)), core.IntVal(int64(w)),
				core.IntVal(int64(ol + 1)), core.IntVal(int64(spec.item)),
				core.IntVal(int64(w)), core.IntVal(0), core.IntVal(int64(spec.qty)),
				core.IntVal(amount), core.StrVal("dist-info-dist-info-dist"),
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// findCustomerByName implements the 60% by-last-name lookup: collect the
// matching customers, order by first name, pick the middle one.
func findCustomerByName(e core.Engine, w, d int, last string) (uint64, []core.Value, error) {
	sec := CustomerNameSec(w, d, last)
	var pks []uint64
	if err := e.ScanSecondary(TCustomer, IdxCustomerName, sec, func(pk uint64) bool {
		pks = append(pks, pk)
		return true
	}); err != nil {
		return 0, nil, err
	}
	type cand struct {
		pk    uint64
		row   []core.Value
		first string
	}
	var cands []cand
	for _, pk := range pks {
		row, ok, err := e.Get(TCustomer, pk)
		if err != nil {
			return 0, nil, err
		}
		if ok && string(row[CLast].S) == last {
			cands = append(cands, cand{pk, row, string(row[CFirst].S)})
		}
	}
	if len(cands) == 0 {
		return 0, nil, fmt.Errorf("tpcc: no customer named %q in %d/%d", last, w, d)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].first < cands[j].first })
	mid := cands[len(cands)/2]
	return mid.pk, mid.row, nil
}

// genPayment creates a Payment invocation.
func genPayment(cfg Config, rng *rand.Rand, w, histSeq int) testbed.Txn {
	d := 1 + rng.Intn(cfg.Districts)
	byName := rng.Intn(100) < 60
	c := randCustomerID(rng, cfg.Customers)
	last := LastName(randLastNum(rng, cfg.Customers))
	amount := int64(100 + rng.Intn(500000)) // cents

	return func(e core.Engine) error {
		wKey := WarehouseKey(w)
		wRow, ok, err := e.Get(TWarehouse, wKey)
		if err != nil || !ok {
			return orErr(err, "warehouse %d", w)
		}
		if err := e.Update(TWarehouse, wKey, core.Update{
			Cols: []int{WYtd}, Vals: []core.Value{core.IntVal(wRow[WYtd].I + amount)},
		}); err != nil {
			return err
		}
		dKey := DistrictKey(w, d)
		dRow, ok, err := e.Get(TDistrict, dKey)
		if err != nil || !ok {
			return orErr(err, "district %d/%d", w, d)
		}
		if err := e.Update(TDistrict, dKey, core.Update{
			Cols: []int{DYtd}, Vals: []core.Value{core.IntVal(dRow[DYtd].I + amount)},
		}); err != nil {
			return err
		}
		var cKey uint64
		var cRow []core.Value
		if byName {
			cKey, cRow, err = findCustomerByName(e, w, d, last)
			if err != nil {
				return err
			}
		} else {
			cKey = CustomerKey(w, d, c)
			cRow, ok, err = e.Get(TCustomer, cKey)
			if err != nil || !ok {
				return orErr(err, "customer %d/%d/%d", w, d, c)
			}
		}
		cols := []int{CBalance, CYtdPayment, CPaymentCnt}
		vals := []core.Value{
			core.IntVal(cRow[CBalance].I - amount),
			core.IntVal(cRow[CYtdPayment].I + amount),
			core.IntVal(cRow[CPaymentCnt].I + 1),
		}
		if string(cRow[CCredit].S) == "BC" {
			// Bad credit: fold payment details into c_data.
			data := fmt.Sprintf("%d,%d,%d,%d|", cKey, d, w, amount)
			merged := append([]byte(data), cRow[CData].S...)
			if len(merged) > 250 {
				merged = merged[:250]
			}
			cols = append(cols, CData)
			vals = append(vals, core.BytesVal(merged))
		}
		if err := e.Update(TCustomer, cKey, core.Update{Cols: cols, Vals: vals}); err != nil {
			return err
		}
		return e.Insert(THistory, HistoryKey(w, histSeq), []core.Value{
			core.IntVal(int64(histSeq)),
			core.IntVal(int64(cKey & 0xfff)),
			core.IntVal(int64(d)),
			core.IntVal(int64(w)),
			core.IntVal(0),
			core.IntVal(amount),
			core.StrVal("payment-history-data"),
		})
	}
}

// genOrderStatus creates an OrderStatus invocation: the customer's most
// recent order and its lines.
func genOrderStatus(cfg Config, rng *rand.Rand, w int) testbed.Txn {
	d := 1 + rng.Intn(cfg.Districts)
	byName := rng.Intn(100) < 60
	c := randCustomerID(rng, cfg.Customers)
	last := LastName(randLastNum(rng, cfg.Customers))

	return func(e core.Engine) error {
		var cKey uint64
		var err error
		if byName {
			cKey, _, err = findCustomerByName(e, w, d, last)
			if err != nil {
				return err
			}
		} else {
			cKey = CustomerKey(w, d, c)
			if _, ok, err := e.Get(TCustomer, cKey); err != nil || !ok {
				return orErr(err, "customer %d", cKey)
			}
		}
		// Most recent order of this customer.
		var lastOrder uint64
		if err := e.ScanSecondary(TOrder, IdxOrderCustomer, uint32(cKey), func(pk uint64) bool {
			if pk > lastOrder {
				lastOrder = pk
			}
			return true
		}); err != nil {
			return err
		}
		if lastOrder == 0 {
			return nil // customer has no orders yet
		}
		oRow, ok, err := e.Get(TOrder, lastOrder)
		if err != nil || !ok {
			return orErr(err, "order %d", lastOrder)
		}
		olCnt := int(oRow[OOLCnt].I)
		read := 0
		if err := e.ScanRange(TOrderLine, lastOrder<<4, (lastOrder+1)<<4,
			func(pk uint64, row []core.Value) bool {
				read++
				return true
			}); err != nil {
			return err
		}
		if read < olCnt {
			return fmt.Errorf("tpcc: order %d has %d lines, expected %d", lastOrder, read, olCnt)
		}
		return nil
	}
}

// genDelivery creates a Delivery invocation: deliver the oldest pending
// order of every district of the warehouse.
func genDelivery(cfg Config, rng *rand.Rand, w int) testbed.Txn {
	carrier := int64(1 + rng.Intn(10))
	deliveryD := rng.Int63n(1 << 30)

	return func(e core.Engine) error {
		for d := 1; d <= cfg.Districts; d++ {
			// Oldest undelivered order (smallest new_order key).
			var oldest uint64
			found := false
			if err := e.ScanRange(TNewOrder, OrderKey(w, d, 0), OrderKey(w, d+1, 0),
				func(pk uint64, row []core.Value) bool {
					oldest = pk
					found = true
					return false
				}); err != nil {
				return err
			}
			if !found {
				continue
			}
			if err := e.Delete(TNewOrder, oldest); err != nil {
				return err
			}
			oRow, ok, err := e.Get(TOrder, oldest)
			if err != nil || !ok {
				return orErr(err, "order %d", oldest)
			}
			if err := e.Update(TOrder, oldest, core.Update{
				Cols: []int{OCarrierID}, Vals: []core.Value{core.IntVal(carrier)},
			}); err != nil {
				return err
			}
			var total int64
			var olKeys []uint64
			if err := e.ScanRange(TOrderLine, oldest<<4, (oldest+1)<<4,
				func(pk uint64, row []core.Value) bool {
					total += row[OLAmount].I
					olKeys = append(olKeys, pk)
					return true
				}); err != nil {
				return err
			}
			for _, pk := range olKeys {
				if err := e.Update(TOrderLine, pk, core.Update{
					Cols: []int{OLDeliveryD}, Vals: []core.Value{core.IntVal(deliveryD)},
				}); err != nil {
					return err
				}
			}
			cKey := CustomerKey(w, d, int(oRow[OCID].I))
			cRow, ok, err := e.Get(TCustomer, cKey)
			if err != nil || !ok {
				return orErr(err, "customer %d", cKey)
			}
			if err := e.Update(TCustomer, cKey, core.Update{
				Cols: []int{CBalance}, Vals: []core.Value{core.IntVal(cRow[CBalance].I + total)},
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// genStockLevel creates a StockLevel invocation: count recently ordered
// items below a stock threshold.
func genStockLevel(cfg Config, rng *rand.Rand, w int) testbed.Txn {
	d := 1 + rng.Intn(cfg.Districts)
	threshold := int64(10 + rng.Intn(11))

	return func(e core.Engine) error {
		dRow, ok, err := e.Get(TDistrict, DistrictKey(w, d))
		if err != nil || !ok {
			return orErr(err, "district %d/%d", w, d)
		}
		next := int(dRow[DNextOID].I)
		lo := next - 20
		if lo < 1 {
			lo = 1
		}
		items := make(map[int64]bool)
		if err := e.ScanRange(TOrderLine, OrderKey(w, d, lo)<<4, OrderKey(w, d, next)<<4,
			func(pk uint64, row []core.Value) bool {
				items[row[OLIID].I] = true
				return true
			}); err != nil {
			return err
		}
		low := 0
		for i := range items {
			sRow, ok, err := e.Get(TStock, StockKey(w, int(i)))
			if err != nil || !ok {
				return orErr(err, "stock %d/%d", w, i)
			}
			if sRow[SQuantity].I < threshold {
				low++
			}
		}
		_ = low
		return nil
	}
}

func orErr(err error, format string, args ...interface{}) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tpcc: missing "+format, args...)
}
