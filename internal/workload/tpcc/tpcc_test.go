package tpcc

import (
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

func smallCfg() Config {
	return Config{
		Warehouses: 2, Districts: 2, Customers: 30, Items: 100,
		InitialOrders: 30, Txns: 200, Partitions: 2, Seed: 7,
	}
}

func newDB(t testing.TB, kind testbed.EngineKind, cfg Config) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: cfg.Partitions,
		Env:        core.EnvConfig{DeviceSize: 256 << 20},
		Schemas:    Schemas(),
		Options:    core.Options{MemTableCap: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadAndRunAllEngines(t *testing.T) {
	cfg := smallCfg()
	for _, kind := range testbed.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			db := newDB(t, kind, cfg)
			if err := Load(db, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := db.Execute(Generate(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if res.Txns != cfg.Txns {
				t.Errorf("ran %d of %d txns", res.Txns, cfg.Txns)
			}
			if res.Committed == 0 {
				t.Error("nothing committed")
			}
			// ~1% of NewOrders abort; with 200 txns it may be zero, but
			// commits must dominate.
			if res.Aborted > res.Committed/5 {
				t.Errorf("too many aborts: %d/%d", res.Aborted, res.Txns)
			}
		})
	}
}

func TestNewOrderConsistency(t *testing.T) {
	// After running, district next_o_id - initial == orders inserted in
	// that district, and each order has its order lines.
	cfg := smallCfg()
	cfg.Txns = 400
	db := newDB(t, testbed.NVMInP, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		e := db.Engine(cfg.PartitionOf(w))
		for d := 1; d <= cfg.Districts; d++ {
			dRow, ok, err := e.Get(TDistrict, DistrictKey(w, d))
			if err != nil || !ok {
				t.Fatal(err)
			}
			next := int(dRow[DNextOID].I)
			for o := cfg.InitialOrders + 1; o < next; o++ {
				oRow, ok, err := e.Get(TOrder, OrderKey(w, d, o))
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("order %d/%d/%d missing (next=%d)", w, d, o, next)
				}
				olCnt := int(oRow[OOLCnt].I)
				n := 0
				e.ScanRange(TOrderLine, OrderKey(w, d, o)<<4, OrderKey(w, d, o+1)<<4,
					func(pk uint64, row []core.Value) bool { n++; return true })
				if n != olCnt {
					t.Fatalf("order %d/%d/%d has %d lines, expects %d", w, d, o, n, olCnt)
				}
			}
		}
	}
}

func TestAbortedNewOrderLeavesNoTrace(t *testing.T) {
	// Money conservation: warehouse YTD equals initial plus all payment
	// amounts (aborted NewOrders must not change anything).
	cfg := smallCfg()
	cfg.Txns = 600
	db := newDB(t, testbed.InP, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Every district's next_o_id must correspond to a dense order space:
	// an aborted NewOrder's district bump was rolled back, so no gaps.
	for w := 1; w <= cfg.Warehouses; w++ {
		e := db.Engine(cfg.PartitionOf(w))
		for d := 1; d <= cfg.Districts; d++ {
			dRow, _, _ := e.Get(TDistrict, DistrictKey(w, d))
			next := int(dRow[DNextOID].I)
			if _, ok, _ := e.Get(TOrder, OrderKey(w, d, next-1)); next > cfg.InitialOrders+1 && !ok {
				t.Fatalf("district %d/%d: order %d missing below next_o_id", w, d, next-1)
			}
			if _, ok, _ := e.Get(TOrder, OrderKey(w, d, next)); ok {
				t.Fatalf("district %d/%d: order exists at next_o_id %d", w, d, next)
			}
		}
	}
	_ = res
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	cfg := smallCfg()
	cfg.Txns = 0
	db := newDB(t, testbed.NVMCoW, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	// Count pending new orders, run enough deliveries, count again.
	countPending := func(w int) int {
		e := db.Engine(cfg.PartitionOf(w))
		n := 0
		for d := 1; d <= cfg.Districts; d++ {
			e.ScanRange(TNewOrder, OrderKey(w, d, 0), OrderKey(w, d+1, 0),
				func(pk uint64, row []core.Value) bool { n++; return true })
		}
		return n
	}
	before := countPending(1)
	if before == 0 {
		t.Fatal("loader created no pending orders")
	}
	e := db.Engine(cfg.PartitionOf(1))
	for i := 0; i < before; i++ { // each delivery clears one per district
		if err := e.Begin(); err != nil {
			t.Fatal(err)
		}
		txn := genDelivery(cfg, rand.New(rand.NewSource(int64(i))), 1)
		if err := txn(e); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if after := countPending(1); after != 0 {
		t.Errorf("%d pending orders remain after %d deliveries", after, before)
	}
}

func TestCustomerByNameLookup(t *testing.T) {
	cfg := smallCfg()
	cfg.Txns = 0
	db := newDB(t, testbed.Log, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	e := db.Engine(cfg.PartitionOf(1))
	last := lastNameOf(5, cfg.Customers)
	pk, row, err := findCustomerByName(e, 1, 1, last)
	if err != nil {
		t.Fatal(err)
	}
	if string(row[CLast].S) != last {
		t.Errorf("found customer with last name %q, want %q", row[CLast].S, last)
	}
	if pk == 0 {
		t.Error("zero pk")
	}
}

func TestRecoveryAfterTPCC(t *testing.T) {
	cfg := smallCfg()
	db := newDB(t, testbed.NVMLog, cfg)
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	// Run another workload on the recovered database.
	cfg2 := cfg
	cfg2.Seed = 99
	res, err := db.Execute(Generate(cfg2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Error("nothing committed after recovery")
	}
}
