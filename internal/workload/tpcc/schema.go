// Package tpcc implements the TPC-C benchmark of §5.1: an order-entry
// environment with nine tables and five transaction types (NewOrder,
// Payment, OrderStatus, Delivery, StockLevel). Transactions that modify the
// database are ~88% of the workload. Each warehouse maps to one partition
// and every transaction is single-partition (§5.1).
package tpcc

import (
	"hash/fnv"

	"nstore/internal/core"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrder     = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Secondary index names.
const (
	IdxCustomerName  = "customer_by_name"
	IdxOrderCustomer = "orders_by_customer"
)

// Primary-key encodings. Tables with secondary indexes keep their keys
// within 24 bits (a constraint of the CoW engines' packed key space).
//
//	warehouse:  w                                   (w in 1..W)
//	district:   w<<4  | d                           (d in 1..10)
//	customer:   w<<16 | d<<12 | c                   (c in 1..4095)
//	orders:     w<<20 | d<<16 | o                   (o in 1..65535)
//	new_order:  same as orders
//	order_line: (orders pk)<<4 | ol                 (ol in 1..15)
//	item:       i
//	stock:      w<<17 | i                           (i < 2^17)
//	history:    w<<32 | seq
func WarehouseKey(w int) uint64 { return uint64(w) }

// DistrictKey encodes (w, d).
func DistrictKey(w, d int) uint64 { return uint64(w)<<4 | uint64(d) }

// CustomerKey encodes (w, d, c).
func CustomerKey(w, d, c int) uint64 {
	return uint64(w)<<16 | uint64(d)<<12 | uint64(c)
}

// OrderKey encodes (w, d, o).
func OrderKey(w, d, o int) uint64 {
	return uint64(w)<<20 | uint64(d)<<16 | uint64(o)
}

// OrderLineKey encodes (w, d, o, ol).
func OrderLineKey(w, d, o, ol int) uint64 { return OrderKey(w, d, o)<<4 | uint64(ol) }

// ItemKey encodes item i.
func ItemKey(i int) uint64 { return uint64(i) }

// StockKey encodes (w, i).
func StockKey(w, i int) uint64 { return uint64(w)<<17 | uint64(i) }

// HistoryKey encodes (w, seq).
func HistoryKey(w, seq int) uint64 { return uint64(w)<<32 | uint64(seq) }

// NameHash maps a customer last name to 24 bits for the name index.
func NameHash(last string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(last))
	return h.Sum32() & 0xffffff
}

// CustomerNameSec builds the (w, d, lastname) secondary key.
func CustomerNameSec(w, d int, last string) uint32 {
	return uint32(w)<<28 | uint32(d)<<24 | NameHash(last)
}

// Column indexes used by the transactions (kept in sync with Schemas).
const (
	// warehouse
	WTax = 6
	WYtd = 7
	// district
	DTax     = 7
	DYtd     = 8
	DNextOID = 9
	// customer
	CFirst      = 3
	CLast       = 5
	CCredit     = 11
	CBalance    = 13
	CYtdPayment = 14
	CPaymentCnt = 15
	CData       = 16
	// orders
	OCID       = 3
	OEntryD    = 4
	OCarrierID = 5
	OOLCnt     = 6
	OAllLocal  = 7
	// order_line
	OLIID       = 4
	OLDeliveryD = 6
	OLQuantity  = 7
	OLAmount    = 8
	// stock
	SQuantity = 2
	SYtd      = 3
	SOrderCnt = 4
	SRemote   = 5
	// item
	IPrice = 2
	IName  = 3
)

// Schemas returns the nine TPC-C table schemas with the two secondary
// indexes used by the transactions.
func Schemas() []*core.Schema {
	return []*core.Schema{
		{
			Name: TWarehouse,
			Columns: []core.Column{
				{Name: "w_id", Type: core.TInt},
				{Name: "w_name", Type: core.TString, Size: 10},
				{Name: "w_street", Type: core.TString, Size: 40},
				{Name: "w_city", Type: core.TString, Size: 20},
				{Name: "w_state", Type: core.TString, Size: 2},
				{Name: "w_zip", Type: core.TString, Size: 9},
				{Name: "w_tax", Type: core.TInt}, // basis points
				{Name: "w_ytd", Type: core.TInt}, // cents
			},
		},
		{
			Name: TDistrict,
			Columns: []core.Column{
				{Name: "d_id", Type: core.TInt},
				{Name: "d_w_id", Type: core.TInt},
				{Name: "d_name", Type: core.TString, Size: 10},
				{Name: "d_street", Type: core.TString, Size: 40},
				{Name: "d_city", Type: core.TString, Size: 20},
				{Name: "d_state", Type: core.TString, Size: 2},
				{Name: "d_zip", Type: core.TString, Size: 9},
				{Name: "d_tax", Type: core.TInt},
				{Name: "d_ytd", Type: core.TInt},
				{Name: "d_next_o_id", Type: core.TInt},
			},
		},
		{
			Name: TCustomer,
			Columns: []core.Column{
				{Name: "c_id", Type: core.TInt},
				{Name: "c_d_id", Type: core.TInt},
				{Name: "c_w_id", Type: core.TInt},
				{Name: "c_first", Type: core.TString, Size: 16},
				{Name: "c_middle", Type: core.TString, Size: 2},
				{Name: "c_last", Type: core.TString, Size: 16},
				{Name: "c_street", Type: core.TString, Size: 40},
				{Name: "c_city", Type: core.TString, Size: 20},
				{Name: "c_state", Type: core.TString, Size: 2},
				{Name: "c_zip", Type: core.TString, Size: 9},
				{Name: "c_phone", Type: core.TString, Size: 16},
				{Name: "c_credit", Type: core.TString, Size: 2},
				{Name: "c_credit_lim", Type: core.TInt},
				{Name: "c_balance", Type: core.TInt},
				{Name: "c_ytd_payment", Type: core.TInt},
				{Name: "c_payment_cnt", Type: core.TInt},
				{Name: "c_data", Type: core.TString, Size: 250},
			},
			Secondary: []core.IndexSpec{{
				Name: IdxCustomerName,
				SecKey: func(row []core.Value) uint32 {
					return CustomerNameSec(int(row[2].I), int(row[1].I), string(row[5].S))
				},
			}},
		},
		{
			Name: THistory,
			Columns: []core.Column{
				{Name: "h_id", Type: core.TInt},
				{Name: "h_c_id", Type: core.TInt},
				{Name: "h_d_id", Type: core.TInt},
				{Name: "h_w_id", Type: core.TInt},
				{Name: "h_date", Type: core.TInt},
				{Name: "h_amount", Type: core.TInt},
				{Name: "h_data", Type: core.TString, Size: 24},
			},
		},
		{
			Name: TNewOrder,
			Columns: []core.Column{
				{Name: "no_o_id", Type: core.TInt},
				{Name: "no_d_id", Type: core.TInt},
				{Name: "no_w_id", Type: core.TInt},
			},
		},
		{
			Name: TOrder,
			Columns: []core.Column{
				{Name: "o_id", Type: core.TInt},
				{Name: "o_d_id", Type: core.TInt},
				{Name: "o_w_id", Type: core.TInt},
				{Name: "o_c_id", Type: core.TInt},
				{Name: "o_entry_d", Type: core.TInt},
				{Name: "o_carrier_id", Type: core.TInt},
				{Name: "o_ol_cnt", Type: core.TInt},
				{Name: "o_all_local", Type: core.TInt},
			},
			Secondary: []core.IndexSpec{{
				Name: IdxOrderCustomer,
				SecKey: func(row []core.Value) uint32 {
					// (w, d, c) — reuse the customer key encoding.
					return uint32(CustomerKey(int(row[2].I), int(row[1].I), int(row[3].I)))
				},
			}},
		},
		{
			Name: TOrderLine,
			Columns: []core.Column{
				{Name: "ol_o_id", Type: core.TInt},
				{Name: "ol_d_id", Type: core.TInt},
				{Name: "ol_w_id", Type: core.TInt},
				{Name: "ol_number", Type: core.TInt},
				{Name: "ol_i_id", Type: core.TInt},
				{Name: "ol_supply_w_id", Type: core.TInt},
				{Name: "ol_delivery_d", Type: core.TInt},
				{Name: "ol_quantity", Type: core.TInt},
				{Name: "ol_amount", Type: core.TInt},
				{Name: "ol_dist_info", Type: core.TString, Size: 24},
			},
		},
		{
			Name: TItem,
			Columns: []core.Column{
				{Name: "i_id", Type: core.TInt},
				{Name: "i_im_id", Type: core.TInt},
				{Name: "i_price", Type: core.TInt},
				{Name: "i_name", Type: core.TString, Size: 24},
				{Name: "i_data", Type: core.TString, Size: 50},
			},
		},
		{
			Name: TStock,
			Columns: []core.Column{
				{Name: "s_i_id", Type: core.TInt},
				{Name: "s_w_id", Type: core.TInt},
				{Name: "s_quantity", Type: core.TInt},
				{Name: "s_ytd", Type: core.TInt},
				{Name: "s_order_cnt", Type: core.TInt},
				{Name: "s_remote_cnt", Type: core.TInt},
				{Name: "s_dist", Type: core.TString, Size: 24},
				{Name: "s_data", Type: core.TString, Size: 50},
			},
		},
	}
}
