package netdrill

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/cluster"
	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/obs"
	"nstore/internal/testbed"
	"nstore/internal/txn2pc"
	"nstore/internal/wire"
	"nstore/internal/workload/tpcc"
)

// TPCCPaymentTxns pre-generates two payment schedules as op lists for
// Router.DoTxn: `single` keeps every transaction on its home warehouse's
// partition (DoTxn degrades it to one OpTxn frame, server-side OCC), `cross`
// sends every customer to a warehouse homed on a DIFFERENT partition, so the
// warehouse/district/history writes and the customer write split across two
// shards and the router runs full percolator 2PC. Both schedules share one
// history-sequence namespace, so a drill can run them back to back against
// the same cluster without key collisions.
//
// The two schedules are the same transaction count, shape, and contention
// profile — the throughput ratio isolates what the prewrite round trips and
// the primary-commit ordering cost on top of a single TXN frame.
func TPCCPaymentTxns(cfg tpcc.Config) (single, cross [][][]wire.Request) {
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 8
	}
	if cfg.Districts == 0 {
		cfg.Districts = 10
	}
	if cfg.Customers == 0 {
		cfg.Customers = 120
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	homes := make([][]int, cfg.Partitions)
	var away [][]int // warehouses NOT homed on partition p, per p
	for w := 1; w <= cfg.Warehouses; w++ {
		homes[cfg.PartitionOf(w)] = append(homes[cfg.PartitionOf(w)], w)
	}
	away = make([][]int, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		for w := 1; w <= cfg.Warehouses; w++ {
			if cfg.PartitionOf(w) != p {
				away[p] = append(away[p], w)
			}
		}
	}
	// Distinct namespace from TPCCRequests' (1<<31 | ...) so the modes never
	// collide on history keys within one process.
	histSeq := make([]int, cfg.Warehouses+1)
	histBase := 1<<30 | int(cfg.Seed&0xfff)<<16
	for w := range histSeq {
		histSeq[w] = histBase
	}
	perPart := cfg.Txns / cfg.Partitions
	single = make([][][]wire.Request, cfg.Partitions)
	cross = make([][][]wire.Request, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		if len(homes[p]) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p*130363+29)))
		for i := 0; i < perPart; i++ {
			w := homes[p][rng.Intn(len(homes[p]))]
			d := 1 + rng.Intn(cfg.Districts)
			c := 1 + rng.Intn(cfg.Customers)
			amount := int64(1 + rng.Intn(5000))
			histSeq[w]++
			single[p] = append(single[p], paymentOps(cfg, p, w, w, d, c, histSeq[w], amount))
			// The cross twin: same home warehouse, customer at a remote one.
			rw := w
			if len(away[p]) > 0 {
				rw = away[p][rng.Intn(len(away[p]))]
			}
			histSeq[w]++
			cross[p] = append(cross[p], paymentOps(cfg, p, w, rw, d, c, histSeq[w], amount))
		}
	}
	return single, cross
}

// paymentOps is one payment as DoTxn input: YTD rides up at the home
// warehouse and district, the customer's balance moves at the customer's
// home partition (cw's — remote in the cross schedule), and the history row
// lands at home. Every op carries an explicit Part pin: the cluster places
// warehouses by the workload's co-location rule, not the router's key hash.
func paymentOps(cfg tpcc.Config, p, w, cw, d, c, seq int, amount int64) []wire.Request {
	cp := int32(cfg.PartitionOf(cw))
	return []wire.Request{
		{Part: int32(p), Op: wire.OpRmw, Table: tpcc.TWarehouse, Key: tpcc.WarehouseKey(w),
			Cols: []wire.RmwCol{{Col: tpcc.WYtd, Add: true, Val: core.IntVal(amount)}}},
		{Part: int32(p), Op: wire.OpRmw, Table: tpcc.TDistrict, Key: tpcc.DistrictKey(w, d),
			Cols: []wire.RmwCol{{Col: tpcc.DYtd, Add: true, Val: core.IntVal(amount)}}},
		{Part: cp, Op: wire.OpRmw, Table: tpcc.TCustomer, Key: tpcc.CustomerKey(cw, d, c),
			Cols: []wire.RmwCol{
				{Col: tpcc.CBalance, Add: true, Val: core.IntVal(-amount)},
				{Col: tpcc.CYtdPayment, Add: true, Val: core.IntVal(amount)},
				{Col: tpcc.CPaymentCnt, Add: true, Val: core.IntVal(1)},
			}},
		{Part: int32(p), Op: wire.OpPut, Table: tpcc.THistory, Key: tpcc.HistoryKey(w, seq),
			Row: []core.Value{
				core.IntVal(int64(seq)),
				core.IntVal(int64(c & 0xfff)),
				core.IntVal(int64(d)),
				core.IntVal(int64(w)),
				core.IntVal(0),
				core.IntVal(amount),
				core.StrVal("payment-history-data"),
			}},
	}
}

// DriveTxn pushes per-partition transaction streams through Router.DoTxn
// with `clients` workers per stream. An aborted transaction (a reader
// force-resolved it, or its prewrite lost a lock race) retries whole — a
// fresh transaction id, nothing applied from the losing attempt. KeyExists
// counts as acked: the history insert is unique per transaction, so it is
// the ack a dropped connection swallowed. ErrTxnUnknown counts as failed —
// re-running an RMW transaction whose outcome is unknown could double-apply.
func DriveTxn(ctx context.Context, r *netclient.Router, streams [][][]wire.Request, clients int) (Result, error) {
	if clients <= 0 {
		clients = 1
	}
	var res Result
	var acked, failed atomic.Int64
	var firstErr atomic.Value
	debug := os.Getenv("NETDRILL_DEBUG") != ""
	start := time.Now()
	var wg sync.WaitGroup
	for p, txns := range streams {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(txns [][]wire.Request, p, c int) {
				defer wg.Done()
				// Jittered retry backoff: colliding workers sleeping identical
				// round-indexed delays retry in lockstep and collide forever.
				rng := rand.New(rand.NewSource(int64(c)*1e6 + int64(len(txns))))
				backoff := func(round int) {
					time.Sleep(time.Duration(500+rng.Intn(2000*(1+round))) * time.Microsecond)
				}
				for i := c; i < len(txns); i += clients {
					landed := false
					for round := 0; round < 100 && !landed; round++ {
						resp, err := r.DoTxn(ctx, txns[i])
						switch {
						case errors.Is(err, netclient.ErrTxnUnknown):
							failed.Add(1)
							firstErr.CompareAndSwap(nil, err)
							return
						case err != nil:
							// Any other DoTxn error fenced and aborted the
							// attempt before returning (a hot lock can outlast
							// a prewrite's routed retries); the whole
							// transaction is safe to re-run.
							if debug && round >= 10 {
								fmt.Fprintf(os.Stderr, "drivetxn: p%d/c%d txn %d round %d: err %v\n", p, c, i, round, err)
							}
							backoff(round)
						case resp.Status == wire.StatusOK || resp.Status == wire.StatusKeyExists:
							landed = true
							acked.Add(1)
						case resp.Status == wire.StatusAborted || resp.Status == wire.StatusLocked:
							if debug && round >= 10 {
								fmt.Fprintf(os.Stderr, "drivetxn: p%d/c%d txn %d round %d: %v %s\n", p, c, i, round, resp.Status, resp.Msg)
							}
							backoff(round)
						default:
							failed.Add(1)
							firstErr.CompareAndSwap(nil, error(&wire.StatusError{Status: resp.Status, Msg: resp.Msg}))
							return
						}
					}
					if !landed {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, errors.New("netdrill: transaction never committed in 100 rounds"))
					}
				}
			}(txns, p, c)
		}
	}
	debugDone := make(chan struct{})
	if os.Getenv("NETDRILL_DEBUG") != "" {
		go func() {
			for {
				select {
				case <-debugDone:
					return
				case <-time.After(2 * time.Second):
					fmt.Fprintf(os.Stderr, "drivetxn: acked=%d failed=%d\n", acked.Load(), failed.Load())
				}
			}
		}()
	}
	wg.Wait()
	close(debugDone)
	res.Elapsed = time.Since(start)
	res.Acked = acked.Load()
	res.Failed = failed.Load()
	if res.Failed > 0 {
		err, _ := firstErr.Load().(error)
		return res, fmt.Errorf("netdrill: %d transactions failed: %w", res.Failed, err)
	}
	return res, nil
}

// RunClusterTxn is the -cluster-txn drill: stand up a replicated cluster
// with the 2PC tables attached, replicate the loaded warehouses into it,
// then drive the same payment schedule twice — single-shard TXN frames,
// then cross-shard 2PC (every customer remote) — and write the throughput
// comparison to benchPath as an obs snapshot (the BENCH_txn.json artifact).
func RunClusterTxn(ccfg cluster.Config, src *testbed.DB, cfg tpcc.Config, f *Flags, out io.Writer, benchPath string) error {
	if out == nil {
		out = os.Stdout
	}
	if ccfg.Shards != src.Partitions() {
		return fmt.Errorf("netdrill: cluster shards (%d) must match workload partitions (%d)", ccfg.Shards, src.Partitions())
	}
	ccfg.Nodes = f.Cluster
	ccfg.Schemas = txn2pc.AugmentSchemas(ccfg.Schemas)
	c, err := cluster.Start(ccfg)
	if err != nil {
		return err
	}
	defer c.Close()
	r := c.Router(netclient.Config{
		Conns:    f.Conns,
		Seed:     ccfg.Seed,
		RetryMax: 40,
		RetryCap: 100 * time.Millisecond,
	})
	defer r.Close()
	ctx := context.Background()

	start := time.Now()
	rows, err := seedCluster(ctx, r, src)
	if err != nil {
		return err
	}
	single, cross := TPCCPaymentTxns(cfg)
	total := 0
	for _, s := range single {
		total += len(s)
	}
	fmt.Fprintf(out, "cluster: %d nodes, %d shards; replicated %d rows in %v\n",
		f.Cluster, ccfg.Shards, rows, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "driving %d payments twice (%d workers/partition): single-shard TXN, then cross-shard 2PC...\n",
		total, f.Clients)

	sres, err := DriveTxn(ctx, r, single, f.Clients)
	if err != nil {
		return fmt.Errorf("netdrill: single-shard phase: %w", err)
	}
	fmt.Fprintf(out, "single-shard: %.0f txn/sec (%d committed in %v)\n",
		sres.Throughput(), sres.Acked, sres.Elapsed.Round(time.Millisecond))
	xres, err := DriveTxn(ctx, r, cross, f.Clients)
	if err != nil {
		return fmt.Errorf("netdrill: cross-shard phase: %w", err)
	}
	ret := 0.0
	if sres.Throughput() > 0 {
		ret = xres.Throughput() / sres.Throughput()
	}
	fmt.Fprintf(out, "cross-shard:  %.0f txn/sec (%d committed in %v) — %.0f%% of single-shard\n",
		xres.Throughput(), xres.Acked, xres.Elapsed.Round(time.Millisecond), 100*ret)

	if benchPath != "" {
		if err := writeTxnSnapshot(benchPath, string(ccfg.Engine), sres, xres, ret); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", benchPath)
	}
	m := c.Coordinator().Map()
	for s, route := range m.Shards {
		fmt.Fprintf(out, "shard %d: epoch %d primary=%s backup=%s\n", s, route.Epoch, route.Primary, route.Backup)
	}
	return nil
}

// writeTxnSnapshot emits the cross-shard experiment in the same obs.Snapshot
// schema as the other BENCH_*.json artifacts: per-phase txn/sec and elapsed
// gauges plus the cross/single retention ratio.
func writeTxnSnapshot(path, engine string, single, cross Result, retention float64) error {
	reg := obs.New()
	base := "txn_" + strings.ReplaceAll(engine, "-", "_")
	for _, ph := range []struct {
		name string
		res  Result
	}{{"single_shard", single}, {"cross_shard", cross}} {
		reg.Gauge(base + "_" + ph.name + "_txn_per_sec").Set(ph.res.Throughput())
		reg.Gauge(base + "_" + ph.name + "_elapsed_ns").Set(float64(ph.res.Elapsed))
		reg.Counter(base + "_" + ph.name + "_committed").Add(ph.res.Acked)
	}
	reg.Gauge(base + "_cross_retention").Set(retention)
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("netdrill: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
