package netdrill

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"nstore/internal/cluster"
	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// PinByKey pins every unrouted request (Part -1) to its testbed partition,
// key % partitions. Cluster mode needs this: the shard id IS the partition
// index, and a workload's co-location rule (all of a transaction's keys on
// one partition) must override the router's hash placement, which scatters
// raw keys by a different function.
func PinByKey(streams [][]*wire.Request, parts int) {
	for _, reqs := range streams {
		for _, r := range reqs {
			if r.Part < 0 {
				r.Part = int32(r.Key % uint64(parts))
			}
		}
	}
}

// seedCluster replicates a locally loaded database into the cluster: every
// partition's rows are scanned and shipped through the router as batched,
// partition-pinned TXN frames, so the load lands exactly where the workload's
// partitioning rule expects it — replicated to the backups like any other
// write. Returns the number of rows shipped.
func seedCluster(ctx context.Context, r *netclient.Router, src *testbed.DB) (int, error) {
	const batch = 64
	total := 0
	for p := 0; p < src.Partitions(); p++ {
		for _, sc := range src.Schemas() {
			var ops []wire.Request
			flush := func() error {
				if len(ops) == 0 {
					return nil
				}
				resp, err := r.DoRetry(ctx, &wire.Request{Part: int32(p), Op: wire.OpTxn, Ops: ops})
				if err != nil {
					return err
				}
				// KeyExists means a retried batch already committed before an
				// ambiguous drop: the TXN is atomic, so the whole batch is in.
				if resp.Status != wire.StatusOK && resp.Status != wire.StatusKeyExists {
					return &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
				}
				total += len(ops)
				ops = nil
				return nil
			}
			var flushErr error
			err := src.Engine(p).ScanRange(sc.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
				cp := make([]core.Value, len(row))
				for i, v := range row {
					if v.S != nil {
						v.S = append(make([]byte, 0, len(v.S)), v.S...)
					}
					cp[i] = v
				}
				ops = append(ops, wire.Request{Op: wire.OpPut, Table: sc.Name, Key: pk, Row: cp})
				if len(ops) >= batch {
					if flushErr = flush(); flushErr != nil {
						return false
					}
				}
				return true
			})
			if err == nil {
				err = flushErr
			}
			if err == nil {
				err = flush()
			}
			if err != nil {
				return total, fmt.Errorf("netdrill: seed partition %d table %s: %w", p, sc.Name, err)
			}
		}
	}
	return total, nil
}

// RunCluster stands up an in-process replicated cluster, replicates the
// locally loaded database into it, and drives the partition-pinned request
// streams through the shard router. With f.ClusterKill the drill SIGKILLs
// shard 0's primary after the first third of each stream and drives the rest
// through the failover — the throughput split shows the blackout's cost.
func RunCluster(ccfg cluster.Config, src *testbed.DB, streams [][]*wire.Request, f *Flags, out io.Writer) error {
	if out == nil {
		out = os.Stdout
	}
	if ccfg.Shards != src.Partitions() {
		return fmt.Errorf("netdrill: cluster shards (%d) must match workload partitions (%d)", ccfg.Shards, src.Partitions())
	}
	ccfg.Nodes = f.Cluster
	c, err := cluster.Start(ccfg)
	if err != nil {
		return err
	}
	defer c.Close()
	r := c.Router(netclient.Config{
		Conns:    f.Conns,
		Seed:     ccfg.Seed,
		RetryMax: 40,
		RetryCap: 100 * time.Millisecond,
	})
	defer r.Close()
	ctx := context.Background()

	start := time.Now()
	rows, err := seedCluster(ctx, r, src)
	if err != nil {
		return err
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	fmt.Fprintf(out, "cluster: %d nodes, %d shards; replicated %d rows in %v\n",
		f.Cluster, ccfg.Shards, rows, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "driving %d requests (%d workers/partition) through the shard router...\n",
		total, f.Clients)

	report := func(phase string, res Result) {
		fmt.Fprintf(out, "%s: %.0f req/sec (%d acked, %d failed in %v)\n",
			phase, res.Throughput(), res.Acked, res.Failed, res.Elapsed.Round(time.Millisecond))
	}
	if f.ClusterKill {
		head := make([][]*wire.Request, len(streams))
		tail := make([][]*wire.Request, len(streams))
		for i, s := range streams {
			cut := len(s) / 3
			head[i], tail[i] = s[:cut], s[cut:]
		}
		res, err := Drive(ctx, r, head, f.Clients)
		if err != nil {
			return err
		}
		report("pre-kill", res)
		victim := c.Coord.Map().Shards[0].Primary
		for _, n := range c.Nodes {
			if n.Addr() == victim {
				n.Kill()
			}
		}
		fmt.Fprintf(out, "killed shard 0's primary (%s); driving on through the failover...\n", victim)
		res, err = Drive(ctx, r, tail, f.Clients)
		if err != nil {
			return err
		}
		report("through-failover", res)
	} else {
		res, err := Drive(ctx, r, streams, f.Clients)
		if err != nil {
			return err
		}
		report("replicated", res)
	}
	m := c.Coord.Map()
	for s, route := range m.Shards {
		fmt.Fprintf(out, "shard %d: epoch %d primary=%s backup=%s\n", s, route.Epoch, route.Primary, route.Backup)
	}
	return nil
}
