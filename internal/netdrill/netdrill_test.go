package netdrill

import (
	"bytes"
	"context"
	"regexp"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/netserve"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

func newDB(t *testing.T, parts int, schemas []*core.Schema) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     testbed.NVMLog,
		Partitions: parts,
		Env:        core.EnvConfig{DeviceSize: 128 << 20},
		Options:    core.Options{MemTableCap: 512},
		Schemas:    schemas,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestYCSBWireDrill drives the lowered YCSB schedule over loopback and
// checks the final state is digest-identical to an in-process run of the
// same schedule: the wire lowering (GET/RMW) must be semantically exact.
func TestYCSBWireDrill(t *testing.T) {
	cfg := ycsb.Config{Tuples: 400, Txns: 400, Partitions: 2, Mix: ycsb.Balanced, Skew: ycsb.LowSkew, Seed: 7}
	db := newDB(t, cfg.Partitions, ycsb.Schema(cfg))
	if err := ycsb.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	rt := serve.New(db, serve.Config{Seed: 7})
	srv, err := netserve.New(rt, "127.0.0.1:0", netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl := netclient.New(srv.Addr(), netclient.Config{Conns: 2})

	streams := YCSBRequests(cfg)
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	res, err := Drive(context.Background(), cl, streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked != int64(total) || res.Failed != 0 {
		t.Fatalf("acked %d failed %d, want %d/0", res.Acked, res.Failed, total)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	digest, err := db.StateDigest()
	if err != nil {
		t.Fatal(err)
	}

	ref := newDB(t, cfg.Partitions, ycsb.Schema(cfg))
	if err := ycsb.Load(ref, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ExecuteSequential(ycsb.Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	refDigest, err := ref.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if digest != refDigest {
		t.Fatalf("wire drill diverged from in-process run:\n  wire %x\n  ref  %x", digest, refDigest)
	}
}

// TestTPCCWireDrill drives payment-shaped wire transactions and audits the
// money: every warehouse's YTD must grow by exactly the sum of the amounts
// the (deterministic) generator charged it.
func TestTPCCWireDrill(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 2, Districts: 2, Customers: 30, Items: 100, InitialOrders: 30, Txns: 120, Partitions: 2, Seed: 7}
	db := newDB(t, cfg.Partitions, tpcc.Schemas())
	if err := tpcc.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	before := make(map[int]int64)
	for w := 1; w <= cfg.Warehouses; w++ {
		row, ok, err := db.Engine(cfg.PartitionOf(w)).Get(tpcc.TWarehouse, tpcc.WarehouseKey(w))
		if err != nil || !ok {
			t.Fatalf("warehouse %d: ok=%v err=%v", w, ok, err)
		}
		before[w] = row[tpcc.WYtd].I
	}

	streams := TPCCRequests(cfg)
	charged := make(map[int]int64)
	total := 0
	for _, reqs := range streams {
		for _, req := range reqs {
			w := int(req.Ops[0].Key)
			charged[w] += req.Ops[0].Cols[0].Val.I
			total++
		}
	}
	if total != cfg.Txns {
		t.Fatalf("generated %d txns, want %d", total, cfg.Txns)
	}

	rt := serve.New(db, serve.Config{Seed: 7})
	srv, err := netserve.New(rt, "127.0.0.1:0", netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl := netclient.New(srv.Addr(), netclient.Config{Conns: 2})
	res, err := Drive(context.Background(), cl, streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked != int64(total) || res.Failed != 0 {
		t.Fatalf("acked %d failed %d, want %d/0", res.Acked, res.Failed, total)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		row, ok, err := db.Engine(cfg.PartitionOf(w)).Get(tpcc.TWarehouse, tpcc.WarehouseKey(w))
		if err != nil || !ok {
			t.Fatalf("warehouse %d after drill: ok=%v err=%v", w, ok, err)
		}
		if got, want := row[tpcc.WYtd].I, before[w]+charged[w]; got != want {
			t.Fatalf("warehouse %d YTD = %d, want %d (+%d)", w, got, want, charged[w])
		}
	}
}

// syncBuf is a race-safe buffer for polling RunServer's output.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServerServesAndDrains boots the full -listen server loop on an
// ephemeral port, serves one request through it, and shuts it down through
// the stop channel.
func TestRunServerServesAndDrains(t *testing.T) {
	cfg := ycsb.Config{Tuples: 100, Txns: 100, Partitions: 2, Seed: 7}
	db := newDB(t, cfg.Partitions, ycsb.Schema(cfg))
	if err := ycsb.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	out := &syncBuf{}
	done := make(chan error, 1)
	go func() {
		done <- RunServer(db, "127.0.0.1:0", ServerConfig{Seed: 7, Stop: stop, Out: out, Errw: out})
	}()

	re := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	cl := netclient.New(addr, netclient.Config{})
	resp, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpGet, Table: ycsb.TableName, Key: 0})
	if err != nil || resp.Status != wire.StatusOK || !resp.Found {
		t.Fatalf("get over RunServer: err=%v resp=%+v", err, resp)
	}
	cl.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	if s := out.String(); !regexp.MustCompile(`served: `).MatchString(s) {
		t.Fatalf("missing drain report in output: %q", s)
	}
}
