// Package netdrill is the shared plumbing behind the cmd/ycsb and cmd/tpcc
// drill modes: one flag set (-serve, -listen, -connect, -metrics, ...), a
// server loop that parks a loaded database behind the wire protocol, and a
// client driver that pushes pre-generated workload schedules through a
// netclient pool and reports throughput. The two commands differ only in
// how they build their request streams (YCSBRequests / TPCCRequests).
package netdrill

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/netserve"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// Flags is the drill flag set shared by cmd/ycsb and cmd/tpcc. The three
// modes are mutually exclusive: -serve runs the in-process fault drill,
// -listen parks the loaded database behind a TCP wire server, and -connect
// drives the workload against a remote server instead of a local database.
type Flags struct {
	Serve            bool
	Clients          int
	Fault            string
	FaultAfter       int
	Metrics          string
	RecoveryParallel int
	Listen           string
	Connect          string
	Conns            int
	Cluster          int
	ClusterKill      bool
	ClusterTxn       bool
	BenchOut         string
}

// Register installs the drill flags on fs, preserving the historical flag
// names both commands used before the plumbing was shared.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Serve, "serve", false, "run through the serving runtime (concurrent clients, supervised partitions)")
	fs.IntVar(&f.Clients, "clients", 2, "serve/connect mode: concurrent clients per partition")
	fs.StringVar(&f.Fault, "fault", "none", "serve mode: mid-traffic fault on every partition: none, fsync-transient, fsync-lost, fsync-torn, fence-lose, fence-reorder")
	fs.IntVar(&f.FaultAfter, "fault-after", 50, "serve mode: fsyncs/fences to let through before the fault fires")
	fs.StringVar(&f.Metrics, "metrics", "", "serve/listen mode: listen address for /metrics, /healthz and pprof (e.g. 127.0.0.1:8080, or :0 for an ephemeral port)")
	fs.IntVar(&f.RecoveryParallel, "recovery-parallel", 0, "recovery fan-out per partition (0 = bounded CPU default, 1 = sequential)")
	fs.StringVar(&f.Listen, "listen", "", "serve the loaded database over the wire protocol on this address (e.g. 127.0.0.1:7070)")
	fs.StringVar(&f.Connect, "connect", "", "drive the workload against a wire server at this address instead of a local database")
	fs.IntVar(&f.Conns, "conns", 4, "connect mode: client connection pool size")
	fs.IntVar(&f.Cluster, "cluster", 0, "drive the workload against an in-process replicated cluster of this many nodes (>= 2; one shard per partition, primary→backup log shipping in the ack path)")
	fs.BoolVar(&f.ClusterKill, "cluster-kill", false, "cluster mode: kill shard 0's primary a third of the way in and drive the rest through the failover")
	fs.BoolVar(&f.ClusterTxn, "cluster-txn", false, "cluster mode: drive payments as cross-shard 2PC transactions (customers at remote warehouses) vs single-shard TXN frames")
	fs.StringVar(&f.BenchOut, "bench-out", "BENCH_txn.json", "cluster-txn mode: write the throughput comparison artifact here (empty to skip)")
	return f
}

// Validate rejects contradictory mode combinations.
func (f *Flags) Validate() error {
	n := 0
	if f.Serve {
		n++
	}
	if f.Listen != "" {
		n++
	}
	if f.Connect != "" {
		n++
	}
	if f.Cluster != 0 {
		n++
	}
	if n > 1 {
		return errors.New("netdrill: -serve, -listen, -connect and -cluster are mutually exclusive")
	}
	if f.Cluster != 0 && f.Cluster < 2 {
		return errors.New("netdrill: -cluster needs at least 2 nodes to replicate")
	}
	if f.ClusterKill && f.Cluster == 0 {
		return errors.New("netdrill: -cluster-kill requires -cluster")
	}
	if f.ClusterTxn && f.Cluster == 0 {
		return errors.New("netdrill: -cluster-txn requires -cluster")
	}
	if f.ClusterTxn && f.ClusterKill {
		return errors.New("netdrill: -cluster-txn and -cluster-kill are mutually exclusive")
	}
	return nil
}

// ServerConfig parameterizes RunServer.
type ServerConfig struct {
	Seed    int64
	Metrics string // optional /metrics listen address
	// Stop, when non-nil, replaces SIGINT/SIGTERM as the shutdown signal
	// (tests drive the server loop through it).
	Stop <-chan struct{}
	Out  io.Writer
	Errw io.Writer
}

// RunServer parks db behind a wire server on listen and blocks until
// SIGINT/SIGTERM (or cfg.Stop), then drains in order: wire server first
// (in-flight requests finish and are acked), then the runtime (metrics
// servers torn down, buffered commits flushed).
func RunServer(db *testbed.DB, listen string, cfg ServerConfig) error {
	out, errw := cfg.Out, cfg.Errw
	if out == nil {
		out = os.Stdout
	}
	if errw == nil {
		errw = os.Stderr
	}
	rt := serve.New(db, serve.Config{Seed: cfg.Seed, OnEvent: func(ev serve.Event) {
		fmt.Fprintf(errw, "serve: part %d: %s (%v)\n", ev.Part, ev.Kind, ev.Err)
	}})
	if cfg.Metrics != "" {
		ms, err := rt.StartMetrics(cfg.Metrics)
		if err != nil {
			rt.Close()
			return err
		}
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", ms.Addr())
	}
	srv, err := netserve.New(rt, listen, netserve.Config{})
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Fprintf(out, "listening on %s (%d partitions)\n", srv.Addr(), db.Partitions())

	stop := cfg.Stop
	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		done := make(chan struct{})
		go func() { <-sig; close(done) }()
		stop = done
	}
	<-stop

	fmt.Fprintln(out, "draining...")
	if err := srv.Close(); err != nil {
		rt.Close()
		return err
	}
	if err := rt.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "served: %+v\n", rt.Stats())
	return nil
}

// Result aggregates one client drive.
type Result struct {
	Acked   int64 // requests answered StatusOK (or KeyExists on a retry — see Drive)
	Failed  int64 // requests that exhausted retries or got a terminal error status
	Elapsed time.Duration
}

// Throughput is acked requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Acked) / r.Elapsed.Seconds()
}

// Doer abstracts the two client shapes a drill can drive: a single-server
// netclient.Client, or a netclient.Router fronting a replicated cluster.
type Doer interface {
	DoRetry(ctx context.Context, req *wire.Request) (*wire.Response, error)
}

// Drive pushes the per-partition request streams through the client with
// `clients` concurrent workers per stream, retrying retryable statuses and
// transport drops. StatusKeyExists counts as acked: drill schedules make
// every insert unique, so KeyExists on a retry is the ack an earlier dropped
// connection swallowed (the same resolution the chaos soak uses).
func Drive(ctx context.Context, cl Doer, streams [][]*wire.Request, clients int) (Result, error) {
	if clients <= 0 {
		clients = 1
	}
	var res Result
	var acked, failed atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for _, reqs := range streams {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(reqs []*wire.Request, c int) {
				defer wg.Done()
				for i := c; i < len(reqs); i += clients {
					resp, err := cl.DoRetry(ctx, reqs[i])
					switch {
					case err != nil:
						failed.Add(1)
						firstErr.CompareAndSwap(nil, err)
					case resp.Status == wire.StatusOK || resp.Status == wire.StatusKeyExists:
						acked.Add(1)
					default:
						failed.Add(1)
						firstErr.CompareAndSwap(nil, error(&wire.StatusError{Status: resp.Status, Msg: resp.Msg}))
					}
				}
			}(reqs, c)
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Acked = acked.Load()
	res.Failed = failed.Load()
	if res.Acked == 0 && res.Failed > 0 {
		err, _ := firstErr.Load().(error)
		return res, fmt.Errorf("netdrill: every request failed: %w", err)
	}
	return res, nil
}

// RunClient connects to addr, drives the streams, and prints a throughput
// report. Failures are tolerated (a drill against a recovering server sees
// some) unless nothing at all succeeds.
func RunClient(addr string, streams [][]*wire.Request, conns, clients int, out io.Writer) error {
	if out == nil {
		out = os.Stdout
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	cl := netclient.New(addr, netclient.Config{
		Conns:    conns,
		RetryMax: 30,
	})
	defer cl.Close()
	fmt.Fprintf(out, "driving %d requests over %d conns (%d workers/partition) against %s...\n",
		total, conns, clients, addr)
	res, err := Drive(context.Background(), cl, streams, clients)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wire: %.0f req/sec (%d acked, %d failed in %v)\n",
		res.Throughput(), res.Acked, res.Failed, res.Elapsed.Round(time.Millisecond))
	return nil
}

// YCSBRequests lowers the declarative YCSB schedule to wire requests: reads
// become GETs, single-field updates become set-mode RMWs (idempotent, so
// retrying a dropped connection is safe). Routing is by key (Part -1), the
// same key%partitions rule the in-process workload uses.
func YCSBRequests(cfg ycsb.Config) [][]*wire.Request {
	opss := ycsb.GenerateOps(cfg)
	out := make([][]*wire.Request, len(opss))
	for p, ops := range opss {
		reqs := make([]*wire.Request, len(ops))
		for i, o := range ops {
			if o.Read {
				reqs[i] = &wire.Request{Part: -1, Op: wire.OpGet, Table: ycsb.TableName, Key: o.Key}
			} else {
				reqs[i] = &wire.Request{Part: -1, Op: wire.OpRmw, Table: ycsb.TableName, Key: o.Key,
					Cols: []wire.RmwCol{{Col: o.Field, Val: core.BytesVal(o.Val)}}}
			}
		}
		out[p] = reqs
	}
	return out
}

// TPCCRequests pre-generates payment-shaped wire transactions: per txn, add
// the amount to warehouse and district YTD, adjust the customer balance
// columns, and insert a history row — the paper's update-heavy multi-table
// transaction expressed as one pipelined TXN frame. The history insert is
// ordered last and its key is unique per transaction, so a retry of a txn
// that actually committed before a connection drop aborts on KeyExists
// before any RMW re-applies: exactly-once effects without server dedup.
func TPCCRequests(cfg tpcc.Config) [][]*wire.Request {
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 8
	}
	if cfg.Districts == 0 {
		cfg.Districts = 10
	}
	if cfg.Customers == 0 {
		cfg.Customers = 120
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	homes := make([][]int, cfg.Partitions)
	for w := 1; w <= cfg.Warehouses; w++ {
		p := cfg.PartitionOf(w)
		homes[p] = append(homes[p], w)
	}
	// History sequences live in their own namespace, far above the
	// in-process generator's (seed&0xfff)<<20 base, so a wire drill against
	// a database that already ran tpcc.Generate never collides.
	histSeq := make([]int, cfg.Warehouses+1)
	histBase := 1<<31 | int(cfg.Seed&0xfff)<<20
	for w := range histSeq {
		histSeq[w] = histBase
	}
	perPart := cfg.Txns / cfg.Partitions
	out := make([][]*wire.Request, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		if len(homes[p]) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p*104729+17)))
		reqs := make([]*wire.Request, 0, perPart)
		for i := 0; i < perPart; i++ {
			w := homes[p][rng.Intn(len(homes[p]))]
			d := 1 + rng.Intn(cfg.Districts)
			c := 1 + rng.Intn(cfg.Customers)
			amount := int64(1 + rng.Intn(5000))
			histSeq[w]++
			reqs = append(reqs, paymentReq(p, w, d, tpcc.CustomerKey(w, d, c), histSeq[w], amount))
		}
		out[p] = reqs
	}
	return out
}

func paymentReq(p, w, d int, cKey uint64, seq int, amount int64) *wire.Request {
	return &wire.Request{
		Part: int32(p),
		Op:   wire.OpTxn,
		Ops: []wire.Request{
			{Op: wire.OpRmw, Table: tpcc.TWarehouse, Key: tpcc.WarehouseKey(w),
				Cols: []wire.RmwCol{{Col: tpcc.WYtd, Add: true, Val: core.IntVal(amount)}}},
			{Op: wire.OpRmw, Table: tpcc.TDistrict, Key: tpcc.DistrictKey(w, d),
				Cols: []wire.RmwCol{{Col: tpcc.DYtd, Add: true, Val: core.IntVal(amount)}}},
			{Op: wire.OpRmw, Table: tpcc.TCustomer, Key: cKey,
				Cols: []wire.RmwCol{
					{Col: tpcc.CBalance, Add: true, Val: core.IntVal(-amount)},
					{Col: tpcc.CYtdPayment, Add: true, Val: core.IntVal(amount)},
					{Col: tpcc.CPaymentCnt, Add: true, Val: core.IntVal(1)},
				}},
			{Op: wire.OpPut, Table: tpcc.THistory, Key: tpcc.HistoryKey(w, seq),
				Row: []core.Value{
					core.IntVal(int64(seq)),
					core.IntVal(int64(cKey & 0xfff)),
					core.IntVal(int64(d)),
					core.IntVal(int64(w)),
					core.IntVal(0),
					core.IntVal(amount),
					core.StrVal("payment-history-data"),
				}},
		},
	}
}
