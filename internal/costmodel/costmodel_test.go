package costmodel

import "testing"

func TestNVMVariantsWriteLess(t *testing.T) {
	p := DefaultParams()
	pairs := [][2]Engine{{NVMInP, InP}, {NVMCoW, CoW}, {NVMLog, Log}}
	for _, pair := range pairs {
		for _, op := range []Op{Insert, Update} {
			nvm := Of(pair[0], op, p).Total()
			trad := Of(pair[1], op, p).Total()
			if nvm >= trad {
				t.Errorf("%s %s: %d >= traditional %d", pair[0], op, nvm, trad)
			}
		}
	}
}

func TestInPInsertWritesThreeCopies(t *testing.T) {
	p := DefaultParams()
	c := Of(InP, Insert, p)
	if c.Memory != p.T || c.Log != p.T || c.Table != p.T {
		t.Errorf("InP insert = %+v, want T in all three", c)
	}
}

func TestNVMInPInsertLogsOnlyPointer(t *testing.T) {
	p := DefaultParams()
	c := Of(NVMInP, Insert, p)
	if c.Log != p.P {
		t.Errorf("NVM-InP insert log = %d, want pointer size %d", c.Log, p.P)
	}
	if c.Memory != p.T {
		t.Errorf("NVM-InP insert memory = %d, want %d", c.Memory, p.T)
	}
}

func TestCoWPaysNodeCopy(t *testing.T) {
	p := DefaultParams()
	c := Of(CoW, Update, p)
	if c.Total() < p.B {
		t.Errorf("CoW update total %d < node size %d", c.Total(), p.B)
	}
	r := OfCoWResident(CoW, Update, p)
	if r.Total() >= c.Total() {
		t.Errorf("resident case %d not cheaper than copy case %d", r.Total(), c.Total())
	}
}

func TestCoWEnginesHaveNoLog(t *testing.T) {
	p := DefaultParams()
	for _, op := range []Op{Insert, Update, Delete} {
		if Of(CoW, op, p).Log != 0 || Of(NVMCoW, op, p).Log != 0 {
			t.Errorf("CoW engines logged on %s", op)
		}
	}
}

func TestThetaScalesLogStructured(t *testing.T) {
	p := DefaultParams()
	p.Theta = 1
	base := Of(Log, Insert, p).Table
	p.Theta = 3
	if got := Of(Log, Insert, p).Table; got != 3*base {
		t.Errorf("theta scaling: %d vs base %d", got, base)
	}
}

func TestRatioHeadline(t *testing.T) {
	// The paper's headline: NVM-aware engines roughly halve NVM writes on
	// write-intensive workloads. The update-cost ratio InP/NVM-InP should
	// comfortably exceed 2x.
	p := DefaultParams()
	if r := Ratio(InP, NVMInP, Update, p); r < 2 {
		t.Errorf("InP/NVM-InP update ratio = %.2f, want >= 2", r)
	}
}

func TestWritesPerMix(t *testing.T) {
	p := DefaultParams()
	ro := WritesPerMix(InP, p, 1000, 100)
	wh := WritesPerMix(InP, p, 1000, 10)
	if ro != 0 {
		t.Errorf("read-only mix wrote %d", ro)
	}
	if wh == 0 {
		t.Error("write-heavy mix wrote nothing")
	}
}

func TestAllCellsDefined(t *testing.T) {
	p := DefaultParams()
	for _, e := range Engines {
		for _, op := range []Op{Insert, Update, Delete} {
			c := Of(e, op, p)
			if c.Total() <= 0 {
				t.Errorf("%s/%s has non-positive cost", e, op)
			}
		}
	}
}
