// Package costmodel implements the paper's Appendix A analytical model
// (Table 3): the amount of data written to NVM per successful insert,
// update, and delete, for each of the six engines, split into memory
// (table storage area), log, and table (durable tree/run) components.
package costmodel

import "fmt"

// Params are the model's symbols.
type Params struct {
	T     int64   // tuple size
	F     int64   // fixed-length field size updated
	V     int64   // variable-length field size updated
	P     int64   // pointer size (8 on the emulator)
	B     int64   // CoW B+tree node size
	Eps   int64   // small fixed-length write (slot state)
	Theta float64 // write amplification of log-structured engines
}

// DefaultParams mirrors the evaluation configuration: 1 KB YCSB tuples,
// 100 B fields, 8-byte pointers, 4 KB CoW nodes.
func DefaultParams() Params {
	return Params{T: 1024, F: 8, V: 100, P: 8, B: 4096, Eps: 1, Theta: 2}
}

// Cost is bytes written to NVM per operation, by destination.
type Cost struct {
	Memory int64
	Log    int64
	Table  int64
}

// Total returns the sum across destinations.
func (c Cost) Total() int64 { return c.Memory + c.Log + c.Table }

// Op identifies a database operation.
type Op string

// Operations of Table 3.
const (
	Insert Op = "insert"
	Update Op = "update"
	Delete Op = "delete"
)

// Engine identifies a storage engine in the model.
type Engine string

// Engines of Table 3.
const (
	InP    Engine = "inp"
	CoW    Engine = "cow"
	Log    Engine = "log"
	NVMInP Engine = "nvm-inp"
	NVMCoW Engine = "nvm-cow"
	NVMLog Engine = "nvm-log"
)

// Engines lists the engines in Table 3's order.
var Engines = []Engine{InP, CoW, Log, NVMInP, NVMCoW, NVMLog}

// Of returns the modelled write cost of op on engine e. For the CoW
// engines, whose cost depends on whether the affected node is already in
// the dirty directory, the conservative (copy-absent) case is returned; use
// OfCoWResident for the copy-present case.
func Of(e Engine, op Op, p Params) Cost {
	th := func(x int64) int64 { return int64(p.Theta * float64(x)) }
	switch e {
	case InP:
		switch op {
		case Insert:
			return Cost{Memory: p.T, Log: p.T, Table: p.T}
		case Update:
			return Cost{Memory: p.F + p.V, Log: 2 * (p.F + p.V), Table: p.F + p.V}
		case Delete:
			return Cost{Memory: p.Eps, Log: p.T, Table: p.Eps}
		}
	case CoW:
		switch op {
		case Insert:
			return Cost{Memory: p.B + p.T, Table: p.B}
		case Update:
			return Cost{Memory: p.B + p.F + p.V, Table: p.B}
		case Delete:
			return Cost{Memory: p.B + p.Eps, Table: p.B}
		}
	case Log:
		switch op {
		case Insert:
			return Cost{Memory: p.T, Log: p.T, Table: th(p.T)}
		case Update:
			return Cost{Memory: p.F + p.V, Log: 2 * (p.F + p.V), Table: th(p.F + p.V)}
		case Delete:
			return Cost{Memory: p.Eps, Log: p.T, Table: p.Eps}
		}
	case NVMInP:
		switch op {
		case Insert:
			return Cost{Memory: p.T, Log: p.P, Table: p.P}
		case Update:
			return Cost{Memory: p.F + p.V + p.P, Log: p.F + p.P}
		case Delete:
			return Cost{Memory: p.Eps, Log: p.P, Table: p.Eps}
		}
	case NVMCoW:
		switch op {
		case Insert:
			return Cost{Memory: p.T, Table: p.B + p.P}
		case Update:
			return Cost{Memory: p.T + p.F + p.V, Table: p.B + p.P}
		case Delete:
			return Cost{Memory: p.Eps, Table: p.B + p.Eps}
		}
	case NVMLog:
		switch op {
		case Insert:
			return Cost{Memory: p.T, Log: p.P, Table: th(p.T)}
		case Update:
			return Cost{Memory: p.F + p.V + p.P, Log: p.F + p.P, Table: th(p.F + p.P)}
		case Delete:
			return Cost{Memory: p.Eps, Log: p.P, Table: p.Eps}
		}
	}
	panic(fmt.Sprintf("costmodel: unknown engine/op %s/%s", e, op))
}

// OfCoWResident returns the cheaper CoW-engine cost when the affected
// B+tree node already has a copy in the dirty directory (the right side of
// Table 3's "B+T | T" entries).
func OfCoWResident(e Engine, op Op, p Params) Cost {
	c := Of(e, op, p)
	switch e {
	case CoW:
		c.Memory -= p.B
		c.Table -= p.B
		switch op {
		case Insert:
			c.Table += p.T
		case Update:
			c.Table += p.F + p.V
		case Delete:
			c.Table += p.Eps
		}
	case NVMCoW:
		c.Table -= p.B
	}
	return c
}

// WritesPerMix estimates total bytes written for a workload of nTxns with
// the given read percentage (reads write nothing; writes are updates).
func WritesPerMix(e Engine, p Params, nTxns int, readPct int) int64 {
	writes := int64(nTxns * (100 - readPct) / 100)
	return writes * Of(e, Update, p).Total()
}

// Ratio returns engine a's total cost for op as a multiple of engine b's.
func Ratio(a, b Engine, op Op, p Params) float64 {
	return float64(Of(a, op, p).Total()) / float64(Of(b, op, p).Total())
}
