package netserve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/netclient"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
	"nstore/internal/wire/chaos"
)

// TestWireChaosSoak is the wire-level acked-commit contract, end to end and
// replayable from -seed: six engines behind a TCP server, traffic pushed
// through a chaos proxy injecting latency, connection drops and torn
// frames, a full RecoverAll heal mid-traffic, a graceful drain, and a final
// power cycle. Every commit acked over the wire must survive everything —
// zero acked-commit loss — and the surviving state must be digest-identical
// to an in-process run of the same schedule, proving the network layer
// added no divergence.
//
// The schedule is made of unique-key inserts with values derived from the
// key, so the one ambiguity a dropped connection leaves (did my insert
// commit before the cut?) resolves exactly: a retry answered KeyExists IS
// the earlier ack.
func TestWireChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a nightly test")
	}
	for _, kind := range testbed.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			soakOne(t, kind, enginetest.BaseSeed())
		})
	}
}

const (
	soakParts   = 2
	soakKeys    = 240
	soakWorkers = 6
)

func soakRow(key uint64) []core.Value {
	return []core.Value{
		core.IntVal(int64(key)),
		core.IntVal(int64(key)*3 + 1),
		core.StrVal(fmt.Sprintf("s%d", key)),
	}
}

func soakOne(t *testing.T, kind testbed.EngineKind, seed int64) {
	db := newDB(t, kind, soakParts, 4) // group commit: acks wait for the barrier
	rt := serve.New(db, serve.Config{Seed: seed})
	srv, err := New(rt, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaos.New(srv.Addr(), chaos.Config{
		Seed:      seed,
		DropProb:  0.02,
		TornProb:  0.5,
		DelayProb: 0.1,
		MaxDelay:  200 * time.Microsecond,
		ChunkSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := netclient.New(proxy.Addr(), netclient.Config{
		Conns:     4,
		Seed:      seed,
		RetryMax:  60,
		RetryBase: time.Millisecond,
		RetryCap:  20 * time.Millisecond,
	})
	ctx := context.Background()

	// Mid-soak heal: once a third of the schedule has acked, power-cycle
	// and re-recover every partition under live traffic.
	var acked atomic.Int64
	healTrigger := make(chan struct{})
	var healOnce sync.Once
	healDone := make(chan error, 1)
	healedFlag := new(atomic.Bool)
	go func() {
		<-healTrigger
		err := rt.RecoverAll(0)
		healedFlag.Store(true)
		healDone <- err
	}()

	// Concurrent snapshot scanners run through the same chaos proxy for the
	// whole soak, including the mid-traffic RecoverAll. Each scan carries a
	// deadline — a read that blocked behind the heal or the executor queue
	// (instead of failing fast or being served from a view) would time out
	// and fail the soak. Keys observed before the heal are asserted present
	// right after it: the heal's power cycle wipes everything volatile, so
	// a snapshot that had exposed a not-yet-durable (unacked) write would
	// be caught missing here.
	preHeal := make([]map[uint64]struct{}, soakParts)
	var preHealMu sync.Mutex
	stopScans := make(chan struct{})
	var scanWG sync.WaitGroup
	scanErr := make(chan error, soakParts)
	for p := 0; p < soakParts; p++ {
		preHeal[p] = make(map[uint64]struct{})
		scanWG.Add(1)
		go func(p int) {
			defer scanWG.Done()
			for {
				select {
				case <-stopScans:
					return
				default:
				}
				sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				resp, err := cl.DoRetry(sctx, &wire.Request{Part: int32(p), Op: wire.OpScan,
					Table: "t", From: 0, To: ^uint64(0)})
				deadlineHit := sctx.Err() != nil // read before cancel poisons it
				cancel()
				if err != nil {
					if deadlineHit {
						scanErr <- fmt.Errorf("partition %d: snapshot scan blocked past its deadline: %w", p, err)
						return
					}
					continue // transport chaos; go again
				}
				if resp.Status != wire.StatusOK {
					continue // typed fail-fast (recovering/overloaded): fine
				}
				before := !healedFlag.Load()
				for i, key := range resp.Keys {
					if resp.Rows[i][1].I != int64(key)*3+1 {
						scanErr <- fmt.Errorf("partition %d: scan saw torn row for key %d: %+v", p, key, resp.Rows[i])
						return
					}
					if before {
						preHealMu.Lock()
						preHeal[p][key] = struct{}{}
						preHealMu.Unlock()
					}
				}
			}
		}(p)
	}

	var wg sync.WaitGroup
	workerErr := make(chan error, soakWorkers)
	for w := 0; w < soakWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for key := uint64(w); key < soakKeys; key += soakWorkers {
				if err := soakPut(ctx, cl, key); err != nil {
					workerErr <- fmt.Errorf("key %d: %w", key, err)
					return
				}
				if n := acked.Add(1); n == soakKeys/3 {
					healOnce.Do(func() { close(healTrigger) })
				}
				// Read-back under chaos: transport failures are the proxy's
				// business, but a StatusOK answer after the ack has no
				// excuse — the ack passed the durability barrier, so the
				// row is published and every later snapshot must see it.
				resp, err := cl.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: key})
				if err == nil && resp.Status == wire.StatusOK {
					if !resp.Found {
						workerErr <- fmt.Errorf("key %d: acked insert invisible to a later snapshot read", key)
						return
					}
					if resp.Row[1].I != int64(key)*3+1 {
						workerErr <- fmt.Errorf("key %d read back %d", key, resp.Row[1].I)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(workerErr)
	for err := range workerErr {
		t.Fatal(err)
	}
	healOnce.Do(func() { close(healTrigger) }) // tiny schedules: heal anyway
	if err := <-healDone; err != nil {
		t.Fatalf("mid-soak RecoverAll: %v", err)
	}
	close(stopScans)
	scanWG.Wait()
	close(scanErr)
	for err := range scanErr {
		t.Fatal(err)
	}

	// Every key a pre-heal snapshot exposed must have survived the heal's
	// power cycle: views only surface published versions, publication waits
	// for the durability barrier, and the heal rolls back exactly to the
	// durable frontier. A missing key here means a view leaked a volatile
	// write.
	nPre := 0
	for p := 0; p < soakParts; p++ {
		nPre += len(preHeal[p])
		seen := make(map[uint64]int64)
		if err := rt.ReadPart(ctx, p, func(v core.ReadView) error {
			return v.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
				seen[pk] = row[1].I
				return true
			})
		}); err != nil {
			t.Fatalf("partition %d: post-heal verification scan: %v", p, err)
		}
		for key := range preHeal[p] {
			if got, ok := seen[key]; !ok || got != int64(key)*3+1 {
				t.Fatalf("partition %d: key %d was exposed by a pre-heal snapshot but is gone after the heal (ok=%v got=%d) — a view leaked a non-durable write", p, key, ok, got)
			}
		}
	}
	t.Logf("%s: %d keys observed by pre-heal snapshots survived the heal", kind, nPre)

	// Tear the traffic path down in order: client, proxy, then a graceful
	// server drain.
	cl.Close()
	pstats := proxy.Stats()
	proxy.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if pstats.Drops == 0 {
		t.Fatalf("chaos proxy never dropped a connection (%+v) — soak tested nothing", pstats)
	}
	t.Logf("%s: proxy %+v, serve stats %+v", kind, pstats, rt.Stats())

	// Zero acked-commit loss, live: every acked key is present with its
	// exact row before any further crash.
	checkAll := func(when string) {
		t.Helper()
		for key := uint64(0); key < soakKeys; key++ {
			row, ok, err := db.Engine(db.Route(key)).Get("t", key)
			if err != nil || !ok {
				t.Fatalf("%s: acked key %d missing: ok=%v err=%v", when, key, ok, err)
			}
			if row[1].I != int64(key)*3+1 || string(row[2].S) != fmt.Sprintf("s%d", key) {
				t.Fatalf("%s: acked key %d corrupted: %+v", when, key, row)
			}
		}
	}
	checkAll("live")

	// Final power cycle: close the runtime, cut power, recover.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	checkAll("recovered")
	digest, err := db.StateDigest()
	if err != nil {
		t.Fatal(err)
	}

	// Digest equality with an in-process run of the same schedule: the
	// network boundary, the chaos, the heal and the power cycle must be
	// invisible in the final state.
	ref := newDB(t, kind, soakParts, 1)
	perPart := make([][]testbed.Txn, soakParts)
	for key := uint64(0); key < soakKeys; key++ {
		key := key
		p := ref.Route(key)
		perPart[p] = append(perPart[p], func(e core.Engine) error {
			return e.Insert("t", key, soakRow(key))
		})
	}
	if _, err := ref.ExecuteSequential(perPart); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	refDigest, err := ref.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if digest != refDigest {
		t.Fatalf("state diverged from in-process run of the same schedule:\n  wire %x\n  ref  %x", digest, refDigest)
	}
}

// soakPut lands one unique-key insert definitively: it loops DoRetry until
// the insert is acked, treating KeyExists on a retry as the ack a dropped
// connection swallowed.
func soakPut(ctx context.Context, cl *netclient.Client, key uint64) error {
	req := &wire.Request{Part: -1, Op: wire.OpPut, Table: "t", Key: key, Row: soakRow(key)}
	var last error
	for round := 0; round < 20; round++ {
		resp, err := cl.DoRetry(ctx, req)
		if err != nil {
			last = err // retries exhausted on transport/backpressure: go again
			continue
		}
		switch resp.Status {
		case wire.StatusOK, wire.StatusKeyExists:
			return nil
		default:
			return &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		}
	}
	return fmt.Errorf("never acked: %w", last)
}
