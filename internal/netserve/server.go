// Package netserve is the TCP front door over serve.Runtime: it speaks the
// internal/wire framed protocol, executes requests through the supervised
// per-partition executors, and — the invariant everything else leans on —
// writes a StatusOK response only after serve.SubmitPart has returned, which
// happens strictly after the group-commit durability barrier released the
// ack. An acked commit over the wire is durable by construction, never
// merely buffered.
//
// Point reads (OpGet) and range scans (OpScan) outside a transaction take a
// different road: serve.ReadPart hands them to a per-partition snapshot
// reader pool, which serves them from an MVCC read view pinned at the
// durable timestamp frontier — lock-free with respect to the executor, and
// incapable of observing an unacked write. Reads inside OpTxn still run on
// the executor so a transaction sees its own writes.
//
// Each connection gets a reader goroutine (frame decode, request dispatch)
// and a writer goroutine (response serialization); requests execute in their
// own handler goroutines, so a connection can pipeline requests to many
// partitions and receive responses out of order, matched by request ID.
package netserve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/obs"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/txn2pc"
	"nstore/internal/wire"
)

// Replicator hooks a cluster layer into the server's request path. All three
// methods are optional behaviors of one implementation (internal/cluster);
// a nil Replicator leaves the server single-node.
type Replicator interface {
	// Admit screens an already-routed request before execution. A non-nil
	// error (typically wire.StatusError{StatusNotPrimary}) rejects it —
	// this is how a backup refuses client traffic.
	Admit(part int, req *wire.Request) error
	// Commit wraps a write's execution. Implementations call submit() —
	// which runs the transaction through the runtime and returns after the
	// group-commit durability barrier — under their own shard ordering
	// discipline, ship the batch to the backup, and return only when the
	// ack may be released to the client. The returned error replaces
	// submit's for status mapping.
	Commit(ctx context.Context, part int, req *wire.Request, submit func() error) error
	// Handle serves a replication-plane request (req.Op.IsRepl()).
	Handle(ctx context.Context, req *wire.Request) *wire.Response
}

// Config parameterizes a Server.
type Config struct {
	// MaxConns bounds concurrent connections (default 256). A connection
	// over the limit is accepted and immediately closed, which a client
	// sees as a dial-then-EOF — the standard "try another replica" signal.
	MaxConns int
	// MaxFrame bounds a request frame's payload (default wire.DefaultMaxFrame).
	MaxFrame int
	// ScanLimit caps rows per scan when the request asks for no limit or a
	// larger one (default 1024).
	ScanLimit int
	// Repl, when non-nil, is the cluster layer's hook into the request
	// path: role admission, ack-after-replication on writes, and the
	// replication-plane ops.
	Repl Replicator
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 1024
	}
	return c
}

// Server serves the wire protocol over TCP on top of a serve.Runtime. The
// caller owns the runtime; Close tears down only the network layer (graceful
// drain: stop accepting, let in-flight requests finish and flush, then close
// the connections).
type Server struct {
	rt  *serve.Runtime
	db  *testbed.DB
	cfg Config
	ln  net.Listener

	schemas map[string]*core.Schema
	// twoPC is set when the DB schemas carry the hidden txn2pc tables:
	// cross-shard 2PC ops are accepted and every client read/write checks
	// the shadowing lock table first.
	twoPC bool

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	active atomic.Int64

	mConns    *obs.Counter
	mRejected *obs.Counter
	mBadFrame *obs.Counter
	mOps      map[wire.Op]*obs.Counter
	mStatus   map[wire.Status]*obs.Counter
	mLat      map[wire.Op]*obs.Histogram
}

// New starts a server on addr (":0" for an ephemeral port) serving rt. The
// wire_* metric surface is registered on the runtime's registry at creation,
// so the /metrics schema stays stable for the server's lifetime.
func New(rt *serve.Runtime, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: listen %s: %w", addr, err)
	}
	s := &Server{
		rt:      rt,
		db:      rt.DB(),
		cfg:     cfg.withDefaults(),
		ln:      ln,
		schemas: make(map[string]*core.Schema),
		conns:   make(map[*srvConn]struct{}),
	}
	for _, sc := range s.db.Schemas() {
		s.schemas[sc.Name] = sc
	}
	s.twoPC = txn2pc.Enabled(s.db.Schemas())
	s.buildMetrics(rt.Metrics())
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

func (s *Server) buildMetrics(reg *obs.Registry) {
	s.mConns = reg.Counter("wire_conns")
	s.mRejected = reg.Counter("wire_conns_rejected")
	s.mBadFrame = reg.Counter("wire_bad_frames")
	reg.GaugeFunc("wire_conns_active", func() float64 { return float64(s.active.Load()) })
	s.mOps = make(map[wire.Op]*obs.Counter, len(wire.Ops))
	s.mLat = make(map[wire.Op]*obs.Histogram, len(wire.Ops))
	for _, op := range wire.Ops {
		s.mOps[op] = reg.Counter("wire_op_" + op.String())
		s.mLat[op] = reg.Histogram("wire_op_" + op.String() + "_ns")
	}
	s.mStatus = make(map[wire.Status]*obs.Counter, len(wire.Statuses))
	for _, st := range wire.Statuses {
		s.mStatus[st] = reg.Counter("wire_status_" + st.String())
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains the server: the listener closes immediately, every
// connection's read side is shut so no new requests enter, in-flight
// requests run to completion and their responses flush, then the
// connections close. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.closeRead()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Kill severs the server abruptly — the SIGKILL stand-in for node-death
// chaos: the listener and every connection close immediately, nothing drains,
// nothing flushes, in-flight responses go nowhere. Unlike Close it does not
// wait for handler goroutines; the caller must treat the node as gone.
func (s *Server) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.c.Close()
	}
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.active.Load() >= int64(s.cfg.MaxConns) {
			s.mRejected.Inc()
			conn.Close()
			continue
		}
		c := &srvConn{s: s, c: conn, writeCh: make(chan []byte, 64)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.mConns.Inc()
		s.active.Add(1)
		s.wg.Add(2)
		go c.read()
		go c.write()
	}
}

func (s *Server) drop(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.active.Add(-1)
}

// srvConn is one client connection.
type srvConn struct {
	s       *Server
	c       net.Conn
	writeCh chan []byte

	inflight sync.WaitGroup
}

// closeRead shuts the connection's read side so the reader unblocks with
// EOF and the drain path (flush in-flight, then close) runs.
func (c *srvConn) closeRead() {
	if tc, ok := c.c.(*net.TCPConn); ok {
		tc.CloseRead()
		return
	}
	c.c.SetReadDeadline(time.Now())
}

// read is the connection's reader loop: frames in, handlers out. On any
// framing error or EOF it stops, waits for in-flight handlers (whose
// responses still get written), then releases the writer.
func (c *srvConn) read() {
	defer c.s.wg.Done()
	br := bufio.NewReaderSize(c.c, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, c.s.cfg.MaxFrame)
		if err != nil {
			// A corrupt or oversized frame means the stream can't be
			// trusted; EOF means the client is done. Either way: drain.
			if errors.Is(err, wire.ErrCRC) || errors.Is(err, wire.ErrFrameTooBig) {
				c.s.mBadFrame.Inc()
			}
			break
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// Framing held, so the stream is still in sync: answer with
			// BadRequest if the ID survived, else drop the connection.
			id, ok := wire.RequestID(payload)
			if !ok {
				break
			}
			c.respond(&wire.Response{ID: id, Status: wire.StatusBadRequest, Msg: err.Error()})
			continue
		}
		c.inflight.Add(1)
		go func() {
			defer c.inflight.Done()
			start := time.Now()
			resp := c.s.exec(context.Background(), req)
			if m, ok := c.s.mLat[req.Op]; ok {
				m.Record(time.Since(start))
			}
			c.s.mStatus[resp.Status].Inc()
			c.respond(resp)
		}()
	}
	c.inflight.Wait()
	close(c.writeCh)
}

// respond frames and queues one response. The writer owns the socket; this
// only blocks if the client stops reading long enough to fill the queue.
func (c *srvConn) respond(resp *wire.Response) {
	payload, err := wire.EncodeResponse(resp)
	if err != nil {
		// An unencodable response is a server bug; degrade to a bare
		// internal error so the client is not left waiting.
		payload, _ = wire.EncodeResponse(&wire.Response{ID: resp.ID, Status: wire.StatusInternal, Msg: "response encoding failed"})
	}
	c.writeCh <- wire.AppendFrame(make([]byte, 0, len(payload)+9), payload)
}

// write is the connection's writer loop. It batches: after each frame it
// opportunistically drains whatever else is queued before flushing, so
// pipelined responses share syscalls.
func (c *srvConn) write() {
	defer c.s.wg.Done()
	defer c.s.drop(c)
	defer c.c.Close()
	bw := bufio.NewWriterSize(c.c, 64<<10)
	dead := false
	for frame := range c.writeCh {
		if dead {
			continue // drain so handlers never block on a dead socket
		}
		if _, err := bw.Write(frame); err != nil {
			dead = true
			continue
		}
		if len(c.writeCh) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		bw.Flush()
	}
}

// exec validates and executes one request through the runtime, producing
// the response only after the durability barrier has released the ack.
func (s *Server) exec(ctx context.Context, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	if m, ok := s.mOps[req.Op]; ok {
		m.Inc()
	}
	if req.Op.IsRepl() {
		if s.cfg.Repl == nil {
			resp.Status, resp.Msg = wire.StatusBadRequest, "not a cluster node"
			return resp
		}
		r := s.cfg.Repl.Handle(ctx, req)
		r.ID = req.ID
		return r
	}
	part, err := s.route(req)
	if err != nil {
		resp.Status, resp.Msg = wire.StatusBadRequest, err.Error()
		return resp
	}
	if s.cfg.Repl != nil {
		if err := s.cfg.Repl.Admit(part, req); err != nil {
			resp.Status, resp.Msg = statusOf(err)
			return resp
		}
	}
	if err := s.validate(req); err != nil {
		resp.Status, resp.Msg = wire.StatusBadRequest, err.Error()
		return resp
	}
	// Point reads and range scans bypass the executor queue entirely: a
	// reader goroutine serves them from an MVCC view pinned at the
	// partition's durable frontier, so they never wait behind writes and
	// never observe an unacked commit.
	if req.Op == wire.OpGet || req.Op == wire.OpScan {
		err = s.rt.ReadPart(ctx, part, func(v core.ReadView) error {
			resp.Found, resp.Row, resp.Keys, resp.Rows = false, nil, nil, nil
			// A lock shadowing the key means a cross-shard transaction is
			// between its commit point and this shard's roll-forward: serving
			// the pre-image here while the primary shard already shows the
			// new state would expose a partial commit. Kick the resolution
			// back to the client (StatusLocked carries the primary pointer).
			if s.twoPC {
				if req.Op == wire.OpGet {
					if err := txn2pc.LockedAt(v, req.Table, req.Key); err != nil {
						return err
					}
				} else if err := txn2pc.LockedInRange(v, req.Table, req.From, req.To); err != nil {
					return err
				}
			}
			return s.applyRead(v, req, resp)
		})
		s.finish(resp, err)
		return resp
	}
	// The executor retries retryable transaction failures in place, so the
	// closure must reset its result fields each attempt.
	txn := func(eng core.Engine) error {
		resp.Found, resp.Row, resp.Keys, resp.Rows, resp.Subs = false, nil, nil, nil, nil
		resp.Txn, resp.TxnState, resp.PriShard, resp.PriTable, resp.PriKey = 0, 0, 0, "", 0
		switch req.Op {
		case wire.OpTxnPrewrite:
			if err := txn2pc.Prewrite(eng, req); err != nil {
				return err
			}
			// Report RMW pre-images alongside the locks: the lock excludes
			// every other writer, so the value read here is the value the
			// commit-time apply will see.
			resp.Subs = make([]wire.Response, len(req.Ops))
			for i := range req.Ops {
				if req.Ops[i].Op != wire.OpRmw {
					continue
				}
				row, ok, err := eng.Get(req.Ops[i].Table, req.Ops[i].Key)
				if err != nil {
					return err
				}
				resp.Subs[i].Found = ok
				resp.Subs[i].Row = copyRow(row)
			}
			return nil
		case wire.OpTxnCommit:
			return txn2pc.Commit(eng, req.Txn, req.Phase == 1, req.Locks)
		case wire.OpTxnAbort:
			return txn2pc.Abort(eng, req.Txn, req.Phase == 1, req.Locks)
		case wire.OpTxnResolve:
			st, err := txn2pc.Resolve(eng, req.Txn, req.Table, req.Key, req.Phase == 1)
			if err != nil {
				return err
			}
			resp.Txn, resp.TxnState = req.Txn, st
			resp.PriShard, resp.PriTable, resp.PriKey = int32(part), req.Table, req.Key
			return nil
		case wire.OpTxn:
			resp.Subs = make([]wire.Response, len(req.Ops))
			for i := range req.Ops {
				if err := s.apply(eng, &req.Ops[i], &resp.Subs[i]); err != nil {
					return err
				}
			}
			return nil
		}
		return s.apply(eng, req, resp)
	}
	if s.cfg.Repl != nil {
		// The cluster layer owns the write: it serializes per shard, runs
		// submit (local durability), ships the batch, and only returns when
		// the backup acked — or with the error that must mask the result.
		err = s.cfg.Repl.Commit(ctx, part, req, func() error {
			return s.rt.SubmitPart(ctx, part, txn)
		})
	} else {
		err = s.rt.SubmitPart(ctx, part, txn)
	}
	s.finish(resp, err)
	return resp
}

// finish maps err onto the response status. A lock conflict keeps the
// primary-lock pointer fields so the client can drive resolution; every
// other failure clears all result fields.
func (s *Server) finish(resp *wire.Response, err error) {
	resp.Status, resp.Msg = statusOf(err)
	if resp.Status == wire.StatusOK {
		return
	}
	resp.Found, resp.Row, resp.Keys, resp.Rows, resp.Subs = false, nil, nil, nil, nil
	resp.Txn, resp.TxnState, resp.PriShard, resp.PriTable, resp.PriKey = 0, 0, 0, "", 0
	resp.LockTable, resp.LockKey = "", 0
	if le := txn2pc.AsLocked(err); le != nil {
		resp.Txn, resp.TxnState = le.Txn, wire.TxnPending
		resp.PriShard, resp.PriTable, resp.PriKey = le.PriShard, le.PriTable, le.PriKey
		resp.LockTable, resp.LockKey = le.Table, le.Key
	}
}

// route picks the request's home partition: explicit Part, or the testbed
// routing function over the primary key (a transaction routes by its first
// sub-op, since every testbed transaction is single-partition).
func (s *Server) route(req *wire.Request) (int, error) {
	if req.Part >= 0 {
		if int(req.Part) >= s.db.Partitions() {
			return 0, fmt.Errorf("no partition %d", req.Part)
		}
		return int(req.Part), nil
	}
	if req.Op == wire.OpTxn {
		if len(req.Ops) == 0 {
			return 0, errors.New("empty transaction")
		}
		return s.db.Route(req.Ops[0].Key), nil
	}
	return s.db.Route(req.Key), nil
}

// validate rejects schema-violating requests before they cost an executor
// slot: unknown tables and ops, malformed rows, out-of-range RMW columns.
func (s *Server) validate(req *wire.Request) error {
	if req.Op == wire.OpTxn {
		for i := range req.Ops {
			if req.Ops[i].Op == wire.OpTxn {
				return errors.New("nested transaction")
			}
			if err := s.validate(&req.Ops[i]); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		return nil
	}
	if req.Op.Is2PC() {
		if !s.twoPC {
			return fmt.Errorf("%v: server schemas carry no 2pc tables", req.Op)
		}
		switch req.Op {
		case wire.OpTxnPrewrite:
			if err := s.checkUserTable(req.Table); err != nil {
				return fmt.Errorf("primary lock: %w", err)
			}
			for i := range req.Ops {
				if err := s.checkUserTable(req.Ops[i].Table); err != nil {
					return fmt.Errorf("op %d: %w", i, err)
				}
				if err := s.validate(&req.Ops[i]); err != nil {
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
		case wire.OpTxnCommit, wire.OpTxnAbort:
			for i, l := range req.Locks {
				if err := s.checkUserTable(l.Table); err != nil {
					return fmt.Errorf("lock %d: %w", i, err)
				}
			}
		case wire.OpTxnResolve:
			if err := s.checkUserTable(req.Table); err != nil {
				return fmt.Errorf("primary lock: %w", err)
			}
		}
		return nil
	}
	sc, ok := s.schemas[req.Table]
	if !ok {
		return fmt.Errorf("unknown table %q", req.Table)
	}
	// The hidden 2PC bookkeeping tables are engine-internal: a client that
	// could write a lock record directly could forge or destroy a commit
	// point. Only the 2PC ops themselves reach them.
	if txn2pc.Hidden(req.Table) {
		return fmt.Errorf("table %q is internal", req.Table)
	}
	switch req.Op {
	case wire.OpGet, wire.OpDelete, wire.OpScan:
		return nil
	case wire.OpPut:
		if len(req.Row) != len(sc.Columns) {
			return fmt.Errorf("table %q wants %d columns, row has %d", req.Table, len(sc.Columns), len(req.Row))
		}
		for i, v := range req.Row {
			if err := checkValue(sc, i, v); err != nil {
				return err
			}
		}
		return nil
	case wire.OpRmw:
		if len(req.Cols) == 0 {
			return errors.New("rmw with no columns")
		}
		for _, cm := range req.Cols {
			if cm.Col < 0 || cm.Col >= len(sc.Columns) {
				return fmt.Errorf("table %q has no column %d", req.Table, cm.Col)
			}
			if cm.Add && sc.Columns[cm.Col].Type != core.TInt {
				return fmt.Errorf("rmw add on non-integer column %q", sc.Columns[cm.Col].Name)
			}
			if err := checkValue(sc, cm.Col, cm.Val); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown op %v", req.Op)
}

// checkUserTable admits only known, non-hidden tables as 2PC targets: the
// lock and status tables shadowing them are derived names, never named
// directly on the wire.
func (s *Server) checkUserTable(table string) error {
	if _, ok := s.schemas[table]; !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	if txn2pc.Hidden(table) {
		return fmt.Errorf("table %q is internal", table)
	}
	return nil
}

func checkValue(sc *core.Schema, col int, v core.Value) error {
	c := sc.Columns[col]
	switch c.Type {
	case core.TInt:
		if v.S != nil {
			return fmt.Errorf("column %q is an integer, got bytes", c.Name)
		}
	case core.TString:
		if v.S == nil {
			return fmt.Errorf("column %q is a string, got an integer", c.Name)
		}
		if c.Size > 0 && len(v.S) > c.Size {
			return fmt.Errorf("column %q: %d bytes exceeds size %d", c.Name, len(v.S), c.Size)
		}
	}
	return nil
}

// applyRead serves a read-only op from a pinned snapshot view. Rows are
// deep-copied for the same reason apply copies them: the response is
// encoded after the view closes.
func (s *Server) applyRead(v core.ReadView, req *wire.Request, resp *wire.Response) error {
	switch req.Op {
	case wire.OpGet:
		row, ok, err := v.Get(req.Table, req.Key)
		if err != nil {
			return err
		}
		resp.Found = ok
		resp.Row = copyRow(row)
		return nil
	case wire.OpScan:
		limit := int(req.Limit)
		if limit <= 0 || limit > s.cfg.ScanLimit {
			limit = s.cfg.ScanLimit
		}
		resp.Keys = []uint64{}
		resp.Rows = [][]core.Value{}
		return v.ScanRange(req.Table, req.From, req.To, func(pk uint64, row []core.Value) bool {
			resp.Keys = append(resp.Keys, pk)
			resp.Rows = append(resp.Rows, copyRow(row))
			return len(resp.Keys) < limit
		})
	}
	return fmt.Errorf("unknown read op %v", req.Op)
}

// apply runs one op against the engine, inside the executor's transaction.
// Result rows are deep-copied: the response is encoded after the executor
// has moved on, and engines hand out views into storage they may rewrite.
//
// Under 2PC the lock table is consulted first: a shadowing lock means some
// cross-shard transaction holds the key between prewrite and resolution, so
// both reads (partial-commit visibility) and writes (lost update against the
// buffered op) must bounce. The lock-table read also lands in the OCC read
// set, so a prewrite racing past this check loses to first-committer-wins.
func (s *Server) apply(eng core.Engine, req *wire.Request, resp *wire.Response) error {
	if s.twoPC {
		switch req.Op {
		case wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpRmw:
			if err := txn2pc.LockedAt(eng, req.Table, req.Key); err != nil {
				return err
			}
		case wire.OpScan:
			if err := txn2pc.LockedInRange(eng, req.Table, req.From, req.To); err != nil {
				return err
			}
		}
	}
	return applyOp(eng, req, resp, s.cfg.ScanLimit)
}

// ApplyOps lowers a shipped batch of sub-ops into one replay transaction for
// a backup: each op applied in order against the engine, results discarded.
// RMW adds are recomputed from the local pre-image — replicas apply batches
// in sequence order from identical state, so the recomputation lands on the
// primary's value. Reads inside a batch are harmless no-ops.
func ApplyOps(ops []wire.Request) func(core.Engine) error {
	return func(eng core.Engine) error {
		for i := range ops {
			var sink wire.Response
			if err := applyOp(eng, &ops[i], &sink, 1); err != nil {
				return err
			}
		}
		return nil
	}
}

func applyOp(eng core.Engine, req *wire.Request, resp *wire.Response, scanLimit int) error {
	switch req.Op {
	case wire.OpGet:
		row, ok, err := eng.Get(req.Table, req.Key)
		if err != nil {
			return err
		}
		resp.Found = ok
		resp.Row = copyRow(row)
		return nil
	case wire.OpPut:
		return eng.Insert(req.Table, req.Key, req.Row)
	case wire.OpDelete:
		return eng.Delete(req.Table, req.Key)
	case wire.OpScan:
		limit := int(req.Limit)
		if limit <= 0 || limit > scanLimit {
			limit = scanLimit
		}
		resp.Keys = []uint64{}
		resp.Rows = [][]core.Value{}
		return eng.ScanRange(req.Table, req.From, req.To, func(pk uint64, row []core.Value) bool {
			resp.Keys = append(resp.Keys, pk)
			resp.Rows = append(resp.Rows, copyRow(row))
			return len(resp.Keys) < limit
		})
	case wire.OpRmw:
		pre, ok, err := eng.Get(req.Table, req.Key)
		if err != nil {
			return err
		}
		if !ok {
			return core.ErrKeyNotFound
		}
		resp.Found = true
		resp.Row = copyRow(pre)
		upd := core.Update{Cols: make([]int, len(req.Cols)), Vals: make([]core.Value, len(req.Cols))}
		for i, cm := range req.Cols {
			upd.Cols[i] = cm.Col
			if cm.Add {
				upd.Vals[i] = core.Value{I: resp.Row[cm.Col].I + cm.Val.I}
			} else {
				upd.Vals[i] = cm.Val
			}
		}
		return eng.Update(req.Table, req.Key, upd)
	// The 2PC ops appear here for the backup replay path: a shipped
	// prewrite/commit/abort/resolve replays against identical state, so the
	// same deterministic mutation lands. Lock checks are skipped — the
	// primary already ran them, and re-running them against the replica's
	// own lock table would be a no-op on identical state anyway.
	case wire.OpTxnPrewrite:
		return txn2pc.Prewrite(eng, req)
	case wire.OpTxnCommit:
		return txn2pc.Commit(eng, req.Txn, req.Phase == 1, req.Locks)
	case wire.OpTxnAbort:
		return txn2pc.Abort(eng, req.Txn, req.Phase == 1, req.Locks)
	case wire.OpTxnResolve:
		_, err := txn2pc.Resolve(eng, req.Txn, req.Table, req.Key, req.Phase == 1)
		return err
	}
	return fmt.Errorf("unknown op %v", req.Op)
}

func copyRow(row []core.Value) []core.Value {
	if row == nil {
		return nil
	}
	out := make([]core.Value, len(row))
	for i, v := range row {
		if v.S != nil {
			v.S = append(make([]byte, 0, len(v.S)), v.S...)
		}
		out[i] = v
	}
	return out
}

// statusOf maps the runtime's error taxonomy onto wire statuses. Corrupt is
// checked before the key sentinels because corrupt paths join errors and
// could embed one; the serve sentinels come before the generic retryable
// check because they carry the retryable tag too.
func statusOf(err error) (wire.Status, string) {
	// A wire.StatusError passes through verbatim: the cluster layer speaks
	// in statuses (NotPrimary, StaleEpoch) that have no core sentinel.
	var se *wire.StatusError
	if errors.As(err, &se) {
		return se.Status, se.Msg
	}
	switch {
	case err == nil:
		return wire.StatusOK, ""
	case errors.Is(err, serve.ErrOverloaded):
		return wire.StatusOverloaded, err.Error()
	case errors.Is(err, serve.ErrRecovering):
		return wire.StatusRecovering, err.Error()
	case errors.Is(err, serve.ErrDegraded):
		return wire.StatusDegraded, err.Error()
	case errors.Is(err, serve.ErrClosed):
		return wire.StatusClosed, err.Error()
	case core.IsCorrupt(err):
		return wire.StatusCorrupt, err.Error()
	case errors.Is(err, testbed.ErrAbort):
		return wire.StatusAborted, err.Error()
	case errors.Is(err, core.ErrKeyNotFound):
		return wire.StatusNotFound, err.Error()
	case errors.Is(err, core.ErrKeyExists):
		return wire.StatusKeyExists, err.Error()
	case errors.Is(err, txn2pc.ErrTxnAborted):
		return wire.StatusAborted, err.Error()
	case errors.Is(err, txn2pc.ErrTxnCommitted):
		return wire.StatusBadRequest, err.Error()
	case txn2pc.AsLocked(err) != nil:
		return wire.StatusLocked, err.Error()
	case core.IsRetryable(err), errors.Is(err, nvm.ErrInjectedCrash), isPanicErr(err):
		return wire.StatusRetryable, err.Error()
	default:
		return wire.StatusInternal, err.Error()
	}
}

func isPanicErr(err error) bool {
	var te *core.TxnError
	return errors.As(err, &te) && te.Panicked
}
