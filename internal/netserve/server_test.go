package netserve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

func schemas() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "n", Type: core.TInt},
			{Name: "s", Type: core.TString, Size: 64},
		},
	}}
}

func newDB(t testing.TB, kind testbed.EngineKind, parts int, group int) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: parts,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: group},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// stack brings up runtime + server + client over loopback.
func stack(t testing.TB, kind testbed.EngineKind, parts int, scfg serve.Config, ncfg Config, ccfg netclient.Config) (*testbed.DB, *serve.Runtime, *Server, *netclient.Client) {
	t.Helper()
	db := newDB(t, kind, parts, 1)
	rt := serve.New(db, scfg)
	srv, err := New(rt, "127.0.0.1:0", ncfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := netclient.New(srv.Addr(), ccfg)
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		rt.Close()
	})
	return db, rt, srv, cl
}

func putReq(key uint64, n int64, s string) *wire.Request {
	return &wire.Request{Part: -1, Op: wire.OpPut, Table: "t", Key: key,
		Row: []core.Value{core.IntVal(int64(key)), core.IntVal(n), core.StrVal(s)}}
}

// TestLoopbackOps exercises every op and status through a real TCP
// connection on every engine family's representative.
func TestLoopbackOps(t *testing.T) {
	_, _, _, cl := stack(t, testbed.NVMLog, 2, serve.Config{}, Config{}, netclient.Config{})
	ctx := context.Background()

	must := func(req *wire.Request, want wire.Status) *wire.Response {
		t.Helper()
		resp, err := cl.Do(ctx, req)
		if err != nil {
			t.Fatalf("%v: %v", req.Op, err)
		}
		if resp.Status != want {
			t.Fatalf("%v: status %v (%s), want %v", req.Op, resp.Status, resp.Msg, want)
		}
		return resp
	}

	for k := uint64(0); k < 20; k++ {
		must(putReq(k, int64(k)*10, "v"), wire.StatusOK)
	}
	must(putReq(3, 0, "dup"), wire.StatusKeyExists)

	got := must(&wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 7}, wire.StatusOK)
	if !got.Found || got.Row[1].I != 70 || string(got.Row[2].S) != "v" {
		t.Fatalf("get 7 = %+v", got)
	}
	miss := must(&wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 999}, wire.StatusOK)
	if miss.Found {
		t.Fatal("get of absent key reported found")
	}

	// RMW with an additive column returns the pre-image.
	pre := must(&wire.Request{Part: -1, Op: wire.OpRmw, Table: "t", Key: 7, Cols: []wire.RmwCol{
		{Col: 1, Add: true, Val: core.IntVal(5)},
		{Col: 2, Val: core.StrVal("rmw")},
	}}, wire.StatusOK)
	if pre.Row[1].I != 70 {
		t.Fatalf("rmw pre-image = %+v", pre.Row)
	}
	after := must(&wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 7}, wire.StatusOK)
	if after.Row[1].I != 75 || string(after.Row[2].S) != "rmw" {
		t.Fatalf("rmw result = %+v", after.Row)
	}
	must(&wire.Request{Part: -1, Op: wire.OpRmw, Table: "t", Key: 999, Cols: []wire.RmwCol{{Col: 1, Val: core.IntVal(0)}}}, wire.StatusNotFound)

	// Scan one partition: keys are routed key%parts, partition 0 holds the
	// even keys in ascending order.
	scan := must(&wire.Request{Part: 0, Op: wire.OpScan, Table: "t", From: 0, To: 100, Limit: 5}, wire.StatusOK)
	if len(scan.Keys) != 5 || scan.Keys[0] != 0 || scan.Keys[4] != 8 {
		t.Fatalf("scan keys = %v", scan.Keys)
	}

	must(&wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 19}, wire.StatusOK)
	must(&wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 19}, wire.StatusNotFound)

	// Multi-op transaction: rmw + put + get, with per-sub responses.
	txn := must(&wire.Request{Part: -1, Op: wire.OpTxn, Ops: []wire.Request{
		{Op: wire.OpRmw, Table: "t", Key: 8, Cols: []wire.RmwCol{{Col: 1, Add: true, Val: core.IntVal(1)}}},
		{Op: wire.OpPut, Table: "t", Key: 100, Row: []core.Value{core.IntVal(100), core.IntVal(1), core.StrVal("h")}},
		{Op: wire.OpGet, Table: "t", Key: 8},
	}}, wire.StatusOK)
	if len(txn.Subs) != 3 || txn.Subs[0].Row[1].I != 80 || !txn.Subs[2].Found || txn.Subs[2].Row[1].I != 81 {
		t.Fatalf("txn subs = %+v", txn.Subs)
	}
	// A failing sub-op aborts the whole transaction: the put before it must
	// not survive.
	must(&wire.Request{Part: -1, Op: wire.OpTxn, Ops: []wire.Request{
		{Op: wire.OpPut, Table: "t", Key: 102, Row: []core.Value{core.IntVal(102), core.IntVal(1), core.StrVal("x")}},
		{Op: wire.OpDelete, Table: "t", Key: 7777},
	}}, wire.StatusNotFound)
	gone := must(&wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 102}, wire.StatusOK)
	if gone.Found {
		t.Fatal("aborted transaction leaked its put")
	}

	// BadRequest family: unknown table, short row, type mismatch, additive
	// string column, bad partition, bad rmw column.
	for _, req := range []*wire.Request{
		{Part: -1, Op: wire.OpGet, Table: "nope", Key: 1},
		{Part: -1, Op: wire.OpPut, Table: "t", Key: 1, Row: []core.Value{core.IntVal(1)}},
		{Part: -1, Op: wire.OpPut, Table: "t", Key: 1, Row: []core.Value{core.IntVal(1), core.StrVal("x"), core.StrVal("x")}},
		{Part: -1, Op: wire.OpRmw, Table: "t", Key: 1, Cols: []wire.RmwCol{{Col: 2, Add: true, Val: core.IntVal(1)}}},
		{Part: 9, Op: wire.OpGet, Table: "t", Key: 1},
		{Part: -1, Op: wire.OpRmw, Table: "t", Key: 1, Cols: []wire.RmwCol{{Col: 7, Val: core.IntVal(1)}}},
	} {
		must(req, wire.StatusBadRequest)
	}
}

// TestPipelining floods one connection with concurrent requests and checks
// every response lands on its own request.
func TestPipelining(t *testing.T) {
	_, _, _, cl := stack(t, testbed.InP, 2, serve.Config{}, Config{}, netclient.Config{Conns: 1})
	ctx := context.Background()
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			if resp, err := cl.DoRetry(ctx, putReq(k, int64(k), "p")); err != nil {
				errs <- err
			} else if resp.Status != wire.StatusOK {
				errs <- &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := cl.Do(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: uint64(i)})
		if err != nil || !resp.Found || resp.Row[1].I != int64(i) {
			t.Fatalf("key %d: err=%v resp=%+v", i, err, resp)
		}
	}
}

// TestOverloadedBackpressure blocks an executor, fills its queue, and checks
// the overflow surfaces as StatusOverloaded — retryable by contract — and
// that DoRetry rides it out once the executor unblocks.
func TestOverloadedBackpressure(t *testing.T) {
	_, rt, _, cl := stack(t, testbed.InP, 1, serve.Config{QueueDepth: 2}, Config{}, netclient.Config{RetryMax: 30})
	ctx := context.Background()

	block := make(chan struct{})
	go rt.Arm(ctx, 0, func() { <-block })
	time.Sleep(20 * time.Millisecond) // executor now parked in the arm txn

	// Saturate: the queue holds 2; keep firing until one bounces. Each Do
	// blocks in SubmitPart while its request sits in the queue, so fire
	// them from goroutines and collect the statuses.
	statuses := make(chan wire.Status, 10)
	for i := 0; i < 10; i++ {
		go func(k uint64) {
			resp, err := cl.Do(ctx, putReq(k, 1, "q"))
			if err != nil {
				statuses <- wire.StatusInternal
				return
			}
			statuses <- resp.Status
		}(uint64(i))
	}
	var sawOverloaded bool
	deadline := time.After(5 * time.Second)
	for i := 0; i < 10 && !sawOverloaded; i++ {
		select {
		case st := <-statuses:
			if st == wire.StatusOverloaded {
				sawOverloaded = true
			}
		case <-deadline:
			i = 10 // queued requests are parked behind the armed executor
		}
	}
	if !sawOverloaded {
		t.Fatal("queue depth 2 never produced StatusOverloaded")
	}
	close(block)

	// With the executor live again, DoRetry absorbs the backpressure.
	resp, err := cl.DoRetry(ctx, putReq(500, 1, "r"))
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("post-unblock put: err=%v resp=%+v", err, resp)
	}
}

// TestConnLimit pins the MaxConns contract: the connection over the limit
// is cut immediately and the client sees a transport error, while the
// original connection keeps serving.
func TestConnLimit(t *testing.T) {
	_, _, srv, cl := stack(t, testbed.InP, 1, serve.Config{}, Config{MaxConns: 1}, netclient.Config{})
	ctx := context.Background()
	if resp, err := cl.Do(ctx, putReq(1, 1, "a")); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("first conn: err=%v resp=%+v", err, resp)
	}
	cl2 := netclient.New(srv.Addr(), netclient.Config{NoRetryOnDrop: true, Timeout: 2 * time.Second})
	defer cl2.Close()
	if _, err := cl2.Do(ctx, putReq(2, 1, "b")); !errors.Is(err, netclient.ErrConnDropped) {
		t.Fatalf("over-limit conn: err=%v, want ErrConnDropped", err)
	}
	if resp, err := cl.Do(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 1}); err != nil || !resp.Found {
		t.Fatalf("original conn harmed by rejected one: err=%v resp=%+v", err, resp)
	}
}

// TestGracefulDrain parks the executor with requests already read off the
// socket, closes the server, and checks every in-flight request still gets
// its response — the flush-then-close half of the drain contract — and that
// the port stops accepting.
func TestGracefulDrain(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 1, 1)
	rt := serve.New(db, serve.Config{QueueDepth: 16})
	defer rt.Close()
	srv, err := New(rt, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl := netclient.New(srv.Addr(), netclient.Config{})
	defer cl.Close()
	ctx := context.Background()

	block := make(chan struct{})
	go rt.Arm(ctx, 0, func() { <-block })
	time.Sleep(20 * time.Millisecond)

	const n = 8
	results := make(chan *wire.Response, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(k uint64) {
			resp, err := cl.Do(ctx, putReq(k, int64(k), "d"))
			if err != nil {
				errs <- err
				return
			}
			results <- resp
		}(uint64(i))
	}
	time.Sleep(100 * time.Millisecond) // let the server read all n requests

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(50 * time.Millisecond)
	close(block) // drain can now finish

	for i := 0; i < n; i++ {
		select {
		case resp := <-results:
			if resp.Status != wire.StatusOK {
				t.Fatalf("drained request status %v (%s)", resp.Status, resp.Msg)
			}
		case err := <-errs:
			t.Fatalf("in-flight request dropped during drain: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("drain never delivered responses")
		}
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	cl2 := netclient.New(srv.Addr(), netclient.Config{NoRetryOnDrop: true, DialTimeout: time.Second, Timeout: time.Second})
	defer cl2.Close()
	if _, err := cl2.Do(ctx, putReq(99, 1, "x")); err == nil {
		t.Fatal("server accepted a connection after Close")
	}
	// Every put that was in flight is durable.
	for i := uint64(0); i < n; i++ {
		if _, ok, err := db.Engine(0).Get("t", i); err != nil || !ok {
			t.Fatalf("drained key %d not durable: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestWireMetrics checks the wire_* surface shows real traffic.
func TestWireMetrics(t *testing.T) {
	_, rt, _, cl := stack(t, testbed.InP, 1, serve.Config{}, Config{}, netclient.Config{})
	ctx := context.Background()
	for k := uint64(0); k < 5; k++ {
		if _, err := cl.Do(ctx, putReq(k, 1, "m")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Do(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 1}); err != nil {
		t.Fatal(err)
	}
	snap := rt.Metrics().Snapshot()
	if snap.Counters["wire_conns"] < 1 {
		t.Fatalf("wire_conns = %d", snap.Counters["wire_conns"])
	}
	if snap.Counters["wire_op_put"] != 5 || snap.Counters["wire_op_get"] != 1 {
		t.Fatalf("op counters: put=%d get=%d", snap.Counters["wire_op_put"], snap.Counters["wire_op_get"])
	}
	if snap.Counters["wire_status_ok"] != 6 {
		t.Fatalf("wire_status_ok = %d", snap.Counters["wire_status_ok"])
	}
	h, ok := snap.Histograms["wire_op_put_ns"]
	if !ok || h.Count != 5 {
		t.Fatalf("wire_op_put_ns histogram = %+v (ok=%v)", h, ok)
	}
}

// TestRecoveringStatus checks a mid-heal partition surfaces as
// StatusRecovering over the wire and DoRetry outlasts the heal.
func TestRecoveringStatus(t *testing.T) {
	db, rt, _, cl := stack(t, testbed.Log, 1, serve.Config{}, Config{}, netclient.Config{RetryMax: 60, RetryCap: 20 * time.Millisecond})
	ctx := context.Background()
	for k := uint64(0); k < 10; k++ {
		if resp, err := cl.Do(ctx, putReq(k, int64(k), "r")); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("put %d: err=%v resp=%+v", k, err, resp)
		}
	}
	healed := make(chan error, 1)
	go func() { healed <- rt.RecoverAll(0) }()
	// Hammer during the heal window: only OK / Recovering / Overloaded are
	// acceptable, and DoRetry must land every one eventually.
	for k := uint64(10); k < 30; k++ {
		resp, err := cl.DoRetry(ctx, putReq(k, int64(k), "r"))
		if err != nil {
			t.Fatalf("put %d during heal: %v", k, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("put %d during heal: %v (%s)", k, resp.Status, resp.Msg)
		}
	}
	if err := <-healed; err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 30; k++ {
		if _, ok, err := db.Engine(0).Get("t", k); err != nil || !ok {
			t.Fatalf("key %d lost across heal: ok=%v err=%v", k, ok, err)
		}
	}
}
