// Package obs is the testbed's lock-cheap metrics layer: atomic counters
// and gauges, a fixed-bucket latency histogram with interpolated quantiles,
// and a Registry that snapshots every registered metric into a stable JSON
// schema. It exists because the paper's evidence is measurement (NVM
// loads/stores, the Fig. 9 execution-time breakdown, recovery latency) and
// the serving runtime needs the same numbers live, scraped from another
// goroutine while the partition executors keep committing.
//
// Concurrency contract: every mutation (Counter.Add, Gauge.Set,
// Histogram.Record) and every read (Value, Quantile, Registry.Snapshot) is
// safe from any goroutine. Hot-path cost is one or two uncontended atomic
// adds; no mutation ever takes a lock. The registry's own map is guarded by
// a mutex, but it is only touched at registration and snapshot time, never
// on the metric hot path.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion identifies the snapshot JSON layout. Consumers (the bench
// trajectory, scrape tooling) should reject snapshots with a different
// version rather than guessing at field meanings.
const SchemaVersion = 1

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 to keep it monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of every Histogram. Bucket i covers
// latencies in [upper(i-1), upper(i)) with upper(i) = 1µs << i, so the
// range spans [0, ~550s) in factor-of-two steps; the last bucket is
// unbounded. Fixed buckets keep Record allocation-free and mergeable.
const histBuckets = 40

// histUpperNS returns the exclusive upper bound of bucket i in nanoseconds.
func histUpperNS(i int) int64 { return 1000 << uint(i) }

// Histogram is a fixed-bucket latency histogram. Record is wait-free (two
// atomic adds and one atomic increment); quantiles are computed on demand
// from a bucket walk with linear interpolation inside the landing bucket.
type Histogram struct {
	disabled atomic.Bool
	count    atomic.Int64
	sumNS    atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

// SetEnabled turns recording on or off. A disabled histogram makes Record a
// single atomic load, for measuring the observability layer's own overhead.
func (h *Histogram) SetEnabled(on bool) { h.disabled.Store(!on) }

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h.disabled.Load() {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Bucket index: smallest i with ns < 1000<<i, i.e. the bit length of
	// ns/1000 (ns < 1µs lands in bucket 0).
	idx := bits.Len64(uint64(ns) / 1000)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the sum of recorded observations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// Quantile returns the q-quantile (0 < q <= 1) of the recorded
// distribution, linearly interpolated within the landing bucket. It returns
// 0 when nothing has been recorded. Under concurrent Record calls the
// result is a consistent-enough approximation: each bucket is read once,
// atomically, in ascending order.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lower := int64(0)
			if i > 0 {
				lower = histUpperNS(i - 1)
			}
			upper := histUpperNS(i)
			if i == histBuckets-1 {
				// Unbounded last bucket: report its lower edge rather than
				// inventing a width.
				return time.Duration(lower)
			}
			frac := (target - cum) / float64(c)
			return time.Duration(lower + int64(frac*float64(upper-lower)))
		}
		cum += float64(c)
	}
	return time.Duration(histUpperNS(histBuckets - 2))
}

// Snapshot is the stable JSON schema every scrape and bench artifact uses.
// Counters are monotonic within one process lifetime unless the metric's
// name documents otherwise (per-engine counters reset when a partition
// heals and its engine is rebuilt); gauges are instantaneous; histogram
// quantiles are nanoseconds.
type Snapshot struct {
	Schema     int                     `json:"schema"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's summary inside a Snapshot.
type HistSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

// Registry names metrics and snapshots them together. Metrics register
// either as owned objects (Counter/Gauge/Histogram) or as read callbacks
// (CounterFunc/GaugeFunc) for layers that already keep their own atomic
// counters — the device, the WAL — so no value is ever double-counted.
type Registry struct {
	mu       sync.Mutex
	counters map[string]func() int64
	gauges   map[string]func() float64
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]func() int64),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers and returns a new owned counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, c.Value)
	return c
}

// CounterFunc registers a counter read through fn at snapshot time. fn must
// be safe to call from any goroutine.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = fn
}

// Gauge registers and returns a new owned gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, g.Value)
	return g
}

// GaugeFunc registers a gauge read through fn at snapshot time. fn must be
// safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram registers and returns a new histogram (idempotent per name:
// registering the same name again returns the existing histogram).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// SetHistogramsEnabled toggles recording on every registered histogram.
func (r *Registry) SetHistogramsEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hists {
		h.SetEnabled(on)
	}
}

// Snapshot reads every registered metric. encoding/json marshals map keys
// in sorted order, so the serialized form is stable across scrapes.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Schema:     SchemaVersion,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, fn := range r.counters {
		s.Counters[name] = fn()
	}
	for name, fn := range r.gauges {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistSnapshot{
			Count: h.Count(),
			SumNS: h.SumNS(),
			P50NS: int64(h.Quantile(0.50)),
			P95NS: int64(h.Quantile(0.95)),
			P99NS: int64(h.Quantile(0.99)),
		}
	}
	return s
}
