package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket edges: an observation at
// exactly an upper bound must land in the next bucket, so quantiles of a
// point mass bracket the true value from the right bucket's range.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d       time.Duration
		lowerNS int64 // inclusive lower edge of the expected bucket
		upperNS int64 // exclusive upper edge
	}{
		{0, 0, 1000},
		{999 * time.Nanosecond, 0, 1000},
		{1 * time.Microsecond, 1000, 2000}, // exact boundary → next bucket
		{1999 * time.Nanosecond, 1000, 2000},
		{2 * time.Microsecond, 2000, 4000},
		{1 * time.Millisecond, 1000 << 9, 1000 << 10},
		{1 * time.Second, 1000 << 19, 1000 << 20},
	}
	for _, c := range cases {
		var h Histogram
		h.Record(c.d)
		got := int64(h.Quantile(0.5))
		if got < c.lowerNS || got >= c.upperNS {
			t.Errorf("Record(%v): p50 = %dns, want within [%d, %d)", c.d, got, c.lowerNS, c.upperNS)
		}
	}
}

// TestHistogramQuantileInterpolation checks the linear interpolation inside
// a bucket: 100 observations spread across two buckets must place p50 near
// the boundary and p95 inside the upper bucket, in order.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 50 observations in [1µs, 2µs), 50 in [2µs, 4µs).
	for i := 0; i < 50; i++ {
		h.Record(1500 * time.Nanosecond)
		h.Record(3 * time.Microsecond)
	}
	p25, p50, p75 := h.Quantile(0.25), h.Quantile(0.50), h.Quantile(0.75)
	if !(p25 <= p50 && p50 <= p75) {
		t.Fatalf("quantiles not monotone: p25=%v p50=%v p75=%v", p25, p50, p75)
	}
	// p25 is the middle of the first bucket's mass → inside [1µs, 2µs).
	if p25 < time.Microsecond || p25 >= 2*time.Microsecond {
		t.Errorf("p25 = %v, want in [1µs, 2µs)", p25)
	}
	// p75 is the middle of the second bucket's mass → inside [2µs, 4µs).
	if p75 < 2*time.Microsecond || p75 >= 4*time.Microsecond {
		t.Errorf("p75 = %v, want in [2µs, 4µs)", p75)
	}
	// Interpolation, not bucket-edge snapping: p25 at half of bucket one
	// should sit near 1.5µs, strictly inside the bucket.
	if p25 == time.Microsecond {
		t.Errorf("p25 snapped to the bucket edge; interpolation is not happening")
	}
}

// TestHistogramEmptyAndDisabled covers the degenerate states.
func TestHistogramEmptyAndDisabled(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	h.SetEnabled(false)
	h.Record(time.Millisecond)
	if h.Count() != 0 {
		t.Errorf("disabled histogram recorded %d observations", h.Count())
	}
	h.SetEnabled(true)
	h.Record(time.Millisecond)
	if h.Count() != 1 {
		t.Errorf("re-enabled histogram count = %d, want 1", h.Count())
	}
}

// TestConcurrentIncrement hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the scraper-safety proof, and
// the final counts must be exact.
func TestConcurrentIncrement(t *testing.T) {
	reg := New()
	c := reg.Counter("ops")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	// Concurrent scrapes while the writers run.
	for i := 0; i < 100; i++ {
		snap := reg.Snapshot()
		if snap.Counters["ops"] < 0 {
			t.Fatal("negative counter")
		}
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestSnapshotJSONSchema locks the serialized layout: schema version, the
// three sections, sorted keys, and the histogram summary fields.
func TestSnapshotJSONSchema(t *testing.T) {
	reg := New()
	reg.Counter("b_count").Add(2)
	reg.Counter("a_count").Add(1)
	reg.Gauge("depth").Set(1.5)
	reg.Histogram("lat").Record(3 * time.Microsecond)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema   int                `json:"schema"`
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Hists    map[string]struct {
			Count int64 `json:"count"`
			SumNS int64 `json:"sum_ns"`
			P50NS int64 `json:"p50_ns"`
			P95NS int64 `json:"p95_ns"`
			P99NS int64 `json:"p99_ns"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, raw)
	}
	if decoded.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", decoded.Schema, SchemaVersion)
	}
	if decoded.Counters["a_count"] != 1 || decoded.Counters["b_count"] != 2 {
		t.Errorf("counters wrong: %v", decoded.Counters)
	}
	if decoded.Gauges["depth"] != 1.5 {
		t.Errorf("gauge wrong: %v", decoded.Gauges)
	}
	lat := decoded.Hists["lat"]
	if lat.Count != 1 || lat.SumNS != 3000 || lat.P50NS == 0 {
		t.Errorf("histogram summary wrong: %+v", lat)
	}
	// Marshaling twice yields byte-identical output (stable schema).
	raw2, _ := json.Marshal(reg.Snapshot())
	if string(raw) != string(raw2) {
		t.Errorf("snapshot serialization unstable:\n%s\n%s", raw, raw2)
	}
}

// BenchmarkHistogramRecord measures the hot-path cost the serving layer
// pays per transaction (the ≤5% overhead budget).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

// BenchmarkHistogramRecordDisabled is the baseline with recording off.
func BenchmarkHistogramRecordDisabled(b *testing.B) {
	var h Histogram
	h.SetEnabled(false)
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}
