// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each figure/table of the evaluation has a corresponding
// Benchmark* below; `go test -bench=. -benchmem` produces per-operation
// costs and NVM perf counters (as b.ReportMetric values), while the full
// paper-style tables come from cmd/nvbench.
package nstore_test

import (
	"fmt"
	"testing"
	"time"

	"nstore"
	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// BenchmarkFig1Interfaces measures one durable 64 B write per op via each
// interface (Fig. 1: allocator vs filesystem durable write bandwidth).
func BenchmarkFig1Interfaces(b *testing.B) {
	b.Run("allocator", func(b *testing.B) {
		dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
		arena := pmalloc.Format(dev, 0, 64<<20)
		p, err := arena.Alloc(16<<20, pmalloc.TagOther)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(p) + int64(i%200000)*64
			dev.Write(off, buf)
			dev.Sync(off, 64)
		}
		reportStall(b, dev)
	})
	b.Run("filesystem", func(b *testing.B) {
		dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
		fs := pmfs.Format(dev, 0, 64<<20, pmfs.Config{ExtentSize: 1 << 20})
		f, _ := fs.Create("bench")
		f.WriteAt(make([]byte, 16<<20), 0)
		f.Sync()
		buf := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.WriteAt(buf, int64(i%200000)*64)
			f.Sync()
		}
		reportStall(b, dev)
	})
}

func reportStall(b *testing.B, dev *nvm.Device) {
	s := dev.Stats()
	b.ReportMetric(float64(s.Stall.Nanoseconds())/float64(b.N), "stall-ns/op")
	b.ReportMetric(float64(s.Stores)/float64(b.N), "stores/op")
}

// ycsbBench preloads a small YCSB database and runs one transaction per
// iteration, cycling through the fixed workload.
func ycsbBench(b *testing.B, kind nstore.EngineKind, mix ycsb.Mix, profile nvm.Profile) {
	cfg := ycsb.Config{Tuples: 4000, Txns: 4000, Partitions: 1, Mix: mix, Skew: ycsb.LowSkew, Seed: 5}
	db, err := testbed.New(testbed.Config{
		Engine:     testbed.EngineKind(kind),
		Partitions: 1,
		Env:        core.EnvConfig{DeviceSize: 512 << 20, Profile: profile, CacheSize: 128 << 10},
		Options:    core.Options{MemTableCap: 512, CheckpointEvery: 4000},
		Schemas:    ycsb.Schema(cfg),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ycsb.Load(db, cfg); err != nil {
		b.Fatal(err)
	}
	work := ycsb.Generate(cfg)[0]
	eng := db.Engine(0)
	db.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Begin(); err != nil {
			b.Fatal(err)
		}
		if err := work[i%len(work)](eng); err != nil {
			b.Fatal(err)
		}
		if err := eng.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := db.Stats()
	b.ReportMetric(float64(s.Loads)/float64(b.N), "nvm-loads/op")
	b.ReportMetric(float64(s.Stores)/float64(b.N), "nvm-stores/op")
	b.ReportMetric(float64(s.BytesWritten)/float64(b.N), "nvm-bytesW/op")
	b.ReportMetric(float64(s.Stall.Nanoseconds())/float64(b.N), "stall-ns/op")
}

// BenchmarkYCSB covers Figs. 5-7 (throughput per engine and mixture; run
// with different -bench filters for latency configs) and reports the NVM
// load/store counters behind Figs. 9-10.
func BenchmarkYCSB(b *testing.B) {
	for _, kind := range nstore.EngineKinds {
		for _, mix := range ycsb.Mixes {
			b.Run(fmt.Sprintf("%s/%s", kind, mix.Name), func(b *testing.B) {
				ycsbBench(b, kind, mix, nvm.ProfileDRAM)
			})
		}
	}
}

// BenchmarkYCSBLatency sweeps the three latency configurations on the
// balanced mixture (the latency dimension of Figs. 5-7).
func BenchmarkYCSBLatency(b *testing.B) {
	for _, kind := range []nstore.EngineKind{nstore.InP, nstore.NVMInP} {
		for _, prof := range nvm.Profiles {
			b.Run(fmt.Sprintf("%s/%s", kind, prof.Name), func(b *testing.B) {
				ycsbBench(b, kind, ycsb.Balanced, prof)
			})
		}
	}
}

// BenchmarkTPCC covers Fig. 8 (TPC-C throughput) and Fig. 11 (NVM traffic).
func BenchmarkTPCC(b *testing.B) {
	for _, kind := range nstore.EngineKinds {
		b.Run(string(kind), func(b *testing.B) {
			cfg := tpcc.Config{Warehouses: 1, Districts: 4, Customers: 60,
				Items: 200, Txns: 4000, Partitions: 1, Seed: 3}
			db, err := testbed.New(testbed.Config{
				Engine:     testbed.EngineKind(kind),
				Partitions: 1,
				Env:        core.EnvConfig{DeviceSize: 512 << 20, CacheSize: 128 << 10},
				Options:    core.Options{MemTableCap: 512},
				Schemas:    tpcc.Schemas(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := tpcc.Load(db, cfg); err != nil {
				b.Fatal(err)
			}
			work := tpcc.Generate(cfg)[0]
			eng := db.Engine(0)
			db.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%len(work) == 0 {
					// Fresh seed per pass so Payment history keys and the
					// rest of the pre-generated parameters never collide.
					c2 := cfg
					c2.Seed = cfg.Seed + int64(i)
					work = tpcc.Generate(c2)[0]
				}
				if err := eng.Begin(); err != nil {
					b.Fatal(err)
				}
				err := work[i%len(work)](eng)
				switch err {
				case nil:
					if err := eng.Commit(); err != nil {
						b.Fatal(err)
					}
				case testbed.ErrAbort:
					if err := eng.Abort(); err != nil {
						b.Fatal(err)
					}
				default:
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := db.Stats()
			b.ReportMetric(float64(s.Loads)/float64(b.N), "nvm-loads/op")
			b.ReportMetric(float64(s.Stores)/float64(b.N), "nvm-stores/op")
		})
	}
}

// BenchmarkRecovery covers Fig. 12: one crash + full recovery per
// iteration after a fixed write history.
func BenchmarkRecovery(b *testing.B) {
	for _, kind := range nstore.EngineKinds {
		b.Run(string(kind), func(b *testing.B) {
			db, err := nstore.Open(nstore.Config{
				Engine:     kind,
				Partitions: 1,
				DeviceSize: 512 << 20,
				Schemas:    []*nstore.Schema{benchSchema()},
				Options:    nstore.Options{CheckpointEvery: 1 << 30, MemTableCap: 1 << 30},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := uint64(0); i < 2000; i++ {
				i := i
				if err := db.Txn(0, func(tx nstore.Tx) error {
					return tx.Insert("t", i, []nstore.Value{
						nstore.IntVal(int64(i)), nstore.StrVal("recovery bench row"),
					})
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Crash()
				if _, err := db.Recover(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Breakdown reports the recovery-component share of execution
// time on the write-heavy mixture (Fig. 13's headline contrast).
func BenchmarkFig13Breakdown(b *testing.B) {
	for _, kind := range []nstore.EngineKind{nstore.InP, nstore.NVMInP} {
		b.Run(string(kind), func(b *testing.B) {
			ycsbBench(b, kind, ycsb.WriteHeavy, nvm.ProfileLowNVM)
		})
	}
}

// BenchmarkFig14Footprint reports the per-row durable footprint after a
// balanced workload (Fig. 14).
func BenchmarkFig14Footprint(b *testing.B) {
	for _, kind := range nstore.EngineKinds {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, err := nstore.Open(nstore.Config{
					Engine: kind, Partitions: 1, DeviceSize: 256 << 20,
					Schemas: []*nstore.Schema{benchSchema()},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for k := uint64(0); k < 500; k++ {
					k := k
					if err := db.Txn(0, func(tx nstore.Tx) error {
						return tx.Insert("t", k, []nstore.Value{
							nstore.IntVal(int64(k)), nstore.StrVal("footprint row data"),
						})
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(db.FootprintReport().Total())/500, "bytes/row")
			}
		})
	}
}

// BenchmarkFig15NodeSize sweeps the non-volatile B+tree node size
// (Appendix B) on point lookups.
func BenchmarkFig15NodeSize(b *testing.B) {
	for _, size := range []int{128, 256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("node-%d", size), func(b *testing.B) {
			db, err := nstore.Open(nstore.Config{
				Engine: nstore.NVMInP, Partitions: 1, DeviceSize: 256 << 20,
				Schemas: []*nstore.Schema{benchSchema()},
				Options: nstore.Options{BTreeNodeSize: size},
			})
			if err != nil {
				b.Fatal(err)
			}
			for k := uint64(0); k < 5000; k++ {
				k := k
				if err := db.Txn(0, func(tx nstore.Tx) error {
					return tx.Insert("t", k, []nstore.Value{nstore.IntVal(int64(k)), nstore.StrVal("x")})
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.View(0, func(tx nstore.Tx) error {
					_, _, err := tx.Get("t", uint64(i)%5000)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16SyncLatency sweeps the sync-primitive latency (Appendix C)
// on single-tuple updates with the NVM-InP engine.
func BenchmarkFig16SyncLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, 100 * time.Nanosecond, 1000 * time.Nanosecond, 10000 * time.Nanosecond} {
		b.Run(fmt.Sprintf("sync-%v", lat), func(b *testing.B) {
			db, err := nstore.Open(nstore.Config{
				Engine: nstore.NVMInP, Partitions: 1, DeviceSize: 256 << 20,
				Schemas: []*nstore.Schema{benchSchema()},
			})
			if err != nil {
				b.Fatal(err)
			}
			for k := uint64(0); k < 1000; k++ {
				k := k
				if err := db.Txn(0, func(tx nstore.Tx) error {
					return tx.Insert("t", k, []nstore.Value{nstore.IntVal(int64(k)), nstore.StrVal("x")})
				}); err != nil {
					b.Fatal(err)
				}
			}
			db.Testbed().SetSyncExtra(lat)
			db.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Txn(0, func(tx nstore.Tx) error {
					return tx.Update("t", uint64(i)%1000, nstore.Update{
						Cols: []int{1}, Vals: []nstore.Value{nstore.StrVal("updated")},
					})
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := db.Stats()
			b.ReportMetric(float64(s.Stall.Nanoseconds())/float64(b.N), "stall-ns/op")
		})
	}
}

// BenchmarkTable3CostModel reports measured bytes written per insert, the
// quantity Table 3's analytical model predicts.
func BenchmarkTable3CostModel(b *testing.B) {
	for _, kind := range nstore.EngineKinds {
		b.Run(string(kind), func(b *testing.B) {
			db, err := nstore.Open(nstore.Config{
				Engine: kind, Partitions: 1, DeviceSize: 1 << 30,
				Schemas: []*nstore.Schema{benchSchema()},
			})
			if err != nil {
				b.Fatal(err)
			}
			db.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i)
				if err := db.Txn(0, func(tx nstore.Tx) error {
					return tx.Insert("t", k, []nstore.Value{
						nstore.IntVal(int64(k)), nstore.StrVal("cost model row payload"),
					})
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			db.Flush()
			b.ReportMetric(float64(db.Stats().BytesWritten)/float64(b.N), "nvm-bytesW/op")
		})
	}
}

func benchSchema() *nstore.Schema {
	return &nstore.Schema{
		Name: "t",
		Columns: []nstore.Column{
			{Name: "id", Type: nstore.TInt},
			{Name: "v", Type: nstore.TString, Size: 100},
		},
	}
}
