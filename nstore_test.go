package nstore_test

import (
	"fmt"
	"testing"

	"nstore"
)

func demoSchema() *nstore.Schema {
	return &nstore.Schema{
		Name: "kv",
		Columns: []nstore.Column{
			{Name: "k", Type: nstore.TInt},
			{Name: "v", Type: nstore.TString, Size: 64},
			{Name: "n", Type: nstore.TInt},
		},
		Secondary: []nstore.IndexSpec{{
			Name:   "by_n",
			SecKey: func(row []nstore.Value) uint32 { return uint32(row[2].I) },
		}},
	}
}

func openDB(t testing.TB, kind nstore.EngineKind) *nstore.DB {
	t.Helper()
	db, err := nstore.Open(nstore.Config{
		Engine:     kind,
		Partitions: 2,
		DeviceSize: 256 << 20,
		Schemas:    []*nstore.Schema{demoSchema()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIAllEngines(t *testing.T) {
	for _, kind := range nstore.EngineKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			db := openDB(t, kind)
			for i := uint64(0); i < 50; i++ {
				i := i
				err := db.Txn(db.Route(i), func(tx nstore.Tx) error {
					return tx.Insert("kv", i, []nstore.Value{
						nstore.IntVal(int64(i)),
						nstore.StrVal(fmt.Sprintf("val-%d", i)),
						nstore.IntVal(int64(i % 5)),
					})
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			// Read back.
			err := db.View(db.Route(7), func(tx nstore.Tx) error {
				row, ok, err := tx.Get("kv", 7)
				if err != nil || !ok {
					return fmt.Errorf("get: %v ok=%v", err, ok)
				}
				if string(row[1].S) != "val-7" {
					return fmt.Errorf("value %q", row[1].S)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// ErrAbort rolls back and returns nil.
			err = db.Txn(db.Route(7), func(tx nstore.Tx) error {
				if err := tx.Delete("kv", 7); err != nil {
					return err
				}
				return nstore.ErrAbort
			})
			if err != nil {
				t.Fatalf("ErrAbort surfaced: %v", err)
			}
			if err := db.View(db.Route(7), func(tx nstore.Tx) error {
				_, ok, _ := tx.Get("kv", 7)
				if !ok {
					return fmt.Errorf("aborted delete applied")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Crash + recover via the facade.
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 50; i++ {
				if err := db.View(db.Route(i), func(tx nstore.Tx) error {
					_, ok, err := tx.Get("kv", i)
					if err != nil || !ok {
						return fmt.Errorf("key %d lost after recovery", i)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestExecuteBatches(t *testing.T) {
	db := openDB(t, nstore.NVMCoW)
	batches := make([][]func(tx nstore.Tx) error, db.Partitions())
	for p := 0; p < db.Partitions(); p++ {
		for i := 0; i < 20; i++ {
			key := uint64(i*db.Partitions() + p)
			batches[p] = append(batches[p], func(tx nstore.Tx) error {
				return tx.Insert("kv", key, []nstore.Value{
					nstore.IntVal(int64(key)), nstore.StrVal("x"), nstore.IntVal(0),
				})
			})
		}
	}
	res, err := db.ExecuteBatches(batches)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 40 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestStatsAndReports(t *testing.T) {
	db := openDB(t, nstore.InP)
	for i := uint64(0); i < 30; i++ {
		i := i
		if err := db.Txn(db.Route(i), func(tx nstore.Tx) error {
			return tx.Insert("kv", i, []nstore.Value{
				nstore.IntVal(int64(i)), nstore.StrVal("y"), nstore.IntVal(1),
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Stores == 0 {
		t.Error("no NVM stores recorded")
	}
	if db.FootprintReport().Total() == 0 {
		t.Error("no footprint")
	}
	bd := db.BreakdownReport()
	if bd.Total() == 0 {
		t.Error("no breakdown")
	}
	db.SetLatency(nstore.ProfileHighNVM)
	db.ResetStats()
	if err := db.View(db.Route(1), func(tx nstore.Tx) error {
		_, _, err := tx.Get("kv", 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.nvm"
	for _, kind := range []nstore.EngineKind{nstore.NVMInP, nstore.NVMCoW, nstore.NVMLog, nstore.InP, nstore.CoW, nstore.Log} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := nstore.Config{
				Engine:     kind,
				Partitions: 2,
				DeviceSize: 256 << 20,
				Schemas:    []*nstore.Schema{demoSchema()},
			}
			db, err := nstore.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 60; i++ {
				i := i
				if err := db.Txn(db.Route(i), func(tx nstore.Tx) error {
					return tx.Insert("kv", i, []nstore.Value{
						nstore.IntVal(int64(i)), nstore.StrVal("persisted"), nstore.IntVal(int64(i % 4)),
					})
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.Save(path); err != nil {
				t.Fatal(err)
			}
			db2, err := nstore.Load(path, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if db2.Partitions() != 2 {
				t.Fatalf("partitions = %d", db2.Partitions())
			}
			for i := uint64(0); i < 60; i++ {
				i := i
				if err := db2.View(db2.Route(i), func(tx nstore.Tx) error {
					row, ok, err := tx.Get("kv", i)
					if err != nil || !ok {
						return fmt.Errorf("key %d lost: %v", i, err)
					}
					if string(row[1].S) != "persisted" {
						return fmt.Errorf("key %d corrupted: %q", i, row[1].S)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			// The reloaded database accepts new transactions.
			if err := db2.Txn(0, func(tx nstore.Tx) error {
				return tx.Insert("kv", 1000, []nstore.Value{
					nstore.IntVal(1000), nstore.StrVal("post-load"), nstore.IntVal(0),
				})
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
